module Config = Pp_machine.Config
module Event = Pp_machine.Event
module Counters = Pp_machine.Counters
module Machine = Pp_machine.Machine
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Engine = Pp_vm.Engine
module Interp = Pp_vm.Interp
module Predict = Pp_analysis.Predict
module Ball_larus = Pp_core.Ball_larus
module Digraph = Pp_graph.Digraph
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program

type verdict = Confirmed | Refuted | Vacuous

let verdict_name = function
  | Confirmed -> "CONFIRMED"
  | Refuted -> "REFUTED"
  | Vacuous -> "VACUOUS"

type mstat = {
  metric : string;
  measured : int;
  lo : int;
  hi : int option;
  mverdict : verdict;
}

type row = {
  proc : string;
  sum : int;
  freq : int;
  path_desc : string;
  stats : mstat list;
  rverdict : verdict;
}

type outcome = {
  mode : Instrument.mode;
  engine : Engine.kind;
  injected : string option;
  rows : row list;
  windows : int;
  anomalies : string list;
  trapped : bool;
  confirmed : int;
  refuted : int;
  vacuous : int;
  mean_slack : float;
}

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

type inject = Dcache_size | Icache_line

let injects = [ Dcache_size; Icache_line ]

let inject_name = function
  | Dcache_size -> "dcache"
  | Icache_line -> "icache"

let inject_of_string = function
  | "dcache" -> Some Dcache_size
  | "icache" -> Some Icache_line
  | _ -> None

let apply_inject inj (c : Config.t) =
  match inj with
  | Dcache_size ->
      Config.validate
        { c with dcache = { c.dcache with size_bytes = c.dcache.size_bytes / 2 } }
  | Icache_line ->
      Config.validate
        { c with icache = { c.icache with line_bytes = c.icache.line_bytes / 2 } }

(* ------------------------------------------------------------------ *)
(* The measurement oracle                                              *)

(* Per-procedure structure the oracle navigates by: the Ball-Larus
   numbering (None = untracked), the original block count (labels below
   it are original blocks) and the instrumented CFG's successor lists,
   whose edge existence distinguishes an in-activation transition from
   an equal-frame sibling call. *)
type pinfo = {
  bl : Ball_larus.t option;
  n_orig : int;
  succ : Block.label list array;
}

type window = {
  wsrc : Ball_larus.source;
  mutable brev : Block.label list;  (* original labels, reversed *)
  mutable wc : int;  (* cycles *)
  mutable wd : int;  (* combined D-cache misses *)
  mutable wi : int;  (* I-cache misses *)
  mutable ws : int;  (* stall cycles, all three sources *)
}

type activation = {
  aframe : int;
  aproc : string;
  info : pinfo;
  mutable last : Block.label;  (* last probed instrumented label *)
  mutable win : window option;
}

type wstat = {
  mutable freq : int;
  mutable tc : int;
  mutable td : int;
  mutable ti : int;
  mutable ts : int;
}

let fresh_window wsrc brev = { wsrc; brev; wc = 0; wd = 0; wi = 0; ws = 0 }

let edge_exists info a b =
  a >= 0 && a < Array.length info.succ && List.mem b info.succ.(a)

let ixc = Counters.ix Event.Cycles
let ixd = Counters.ix Event.Dcache_misses
let ixi = Counters.ix Event.Icache_misses
let ixm = Counters.ix Event.Mispredict_stalls
let ixb = Counters.ix Event.Store_buffer_stalls
let ixf = Counters.ix Event.Fp_stalls

type oracle = {
  commits : (string * int, wstat) Hashtbl.t;
  mutable anomalies : string list;
  mutable stack : activation list;
  totals : int array;  (* the live counter array *)
  mutable lc : int;
  mutable ld : int;
  mutable li : int;
  mutable ls : int;
  pinfos : (string, pinfo) Hashtbl.t;
}

let anomaly o msg = o.anomalies <- msg :: o.anomalies

(* Attribute the counter delta since the previous probe to the open
   window of the topmost activation. *)
let flush_delta o =
  let c = o.totals.(ixc)
  and d = o.totals.(ixd)
  and i = o.totals.(ixi)
  and s = o.totals.(ixm) + o.totals.(ixb) + o.totals.(ixf) in
  (match o.stack with
  | { win = Some w; _ } :: _ ->
      w.wc <- w.wc + c - o.lc;
      w.wd <- w.wd + d - o.ld;
      w.wi <- w.wi + i - o.li;
      w.ws <- w.ws + s - o.ls
  | _ -> ());
  o.lc <- c;
  o.ld <- d;
  o.li <- i;
  o.ls <- s

let close o act sink =
  match act.win with
  | None -> ()
  | Some w -> (
      act.win <- None;
      match act.info.bl with
      | None -> ()
      | Some bl -> (
          match List.rev w.brev with
          | [] ->
              if w.wc <> 0 || w.wd <> 0 || w.wi <> 0 || w.ws <> 0 then
                anomaly o
                  (Printf.sprintf "%s: counter deltas in a window with no blocks"
                     act.aproc)
          | blocks -> (
              let path = { Ball_larus.source = w.wsrc; blocks; sink } in
              match Ball_larus.encode bl path with
              | sum ->
                  let st =
                    match Hashtbl.find_opt o.commits (act.aproc, sum) with
                    | Some st -> st
                    | None ->
                        let st = { freq = 0; tc = 0; td = 0; ti = 0; ts = 0 } in
                        Hashtbl.add o.commits (act.aproc, sum) st;
                        st
                  in
                  st.freq <- st.freq + 1;
                  st.tc <- st.tc + w.wc;
                  st.td <- st.td + w.wd;
                  st.ti <- st.ti + w.wi;
                  st.ts <- st.ts + w.ws
              | exception Invalid_argument msg ->
                  anomaly o
                    (Format.asprintf "%s: unencodable measured window %a (%s)"
                       act.aproc Ball_larus.pp_path path msg))))

let probe o ~proc ~label ~frame ~iregs:_ =
  flush_delta o;
  (* Returns: every activation with a frame below the probing one is
     done; its window ran to the procedure's exit. *)
  let rec pops () =
    match o.stack with
    | a :: rest when a.aframe < frame ->
        o.stack <- rest;
        close o a Ball_larus.To_exit;
        pops ()
    | _ -> ()
  in
  pops ();
  match o.stack with
  | a :: _
    when a.aframe = frame && String.equal a.aproc proc
         && edge_exists a.info a.last label ->
      (* In-activation transition. *)
      a.last <- label;
      if label < a.info.n_orig then (
        match a.win with
        | Some w -> (
            match (w.brev, a.info.bl) with
            | prev :: _, Some bl -> (
                match Ball_larus.backedge_between bl ~src:prev ~dst:label with
                | Some e ->
                    close o a (Ball_larus.Into_backedge e);
                    a.win <-
                      Some (fresh_window (Ball_larus.After_backedge e) [ label ])
                | None -> w.brev <- label :: w.brev)
            | _, _ -> w.brev <- label :: w.brev)
        | None -> ())
  | _ ->
      (* New activation; an equal-frame top is a finished sibling. *)
      (match o.stack with
      | a :: rest when a.aframe = frame ->
          o.stack <- rest;
          close o a Ball_larus.To_exit
      | _ -> ());
      let info =
        match Hashtbl.find_opt o.pinfos proc with
        | Some i -> i
        | None -> { bl = None; n_orig = 0; succ = [||] }
      in
      let win =
        match info.bl with
        | None -> None
        | Some _ ->
            Some
              (fresh_window Ball_larus.From_entry
                 (if label < info.n_orig then [ label ] else []))
      in
      o.stack <- { aframe = frame; aproc = proc; info; last = label; win } :: o.stack

let finish o ~trapped =
  if trapped then o.stack <- []
  else begin
    flush_delta o;
    List.iter (fun a -> close o a Ball_larus.To_exit) o.stack;
    o.stack <- []
  end

(* ------------------------------------------------------------------ *)
(* Verdict assembly                                                    *)

let tail_zero =
  { Predict.t_cycles = Some 0; t_dmiss = Some 0; t_imiss = Some 0; t_stalls = Some 0 }

let mk_stat ~vacuous_slack ~freq ~once_n metric measured (itv : Predict.itv)
    ~once ~tail =
  let lo = freq * itv.lo in
  let hi =
    match (itv.hi, tail) with
    | Some h, Some t -> Some ((freq * h) + (once_n * once) + (freq * t))
    | _ -> None
  in
  let mverdict =
    if measured < lo then Refuted
    else
      match hi with
      | Some h when measured > h -> Refuted
      | None -> Vacuous
      | Some h ->
          (* Loose iff more than [vacuous_slack] of slack per window, even
             against a zero measurement. *)
          if
            float_of_int (h - lo)
            > vacuous_slack *. float_of_int (max freq measured)
          then Vacuous
          else Confirmed
  in
  { metric; measured; lo; hi; mverdict }

let worst a b =
  match (a, b) with
  | Refuted, _ | _, Refuted -> Refuted
  | Vacuous, _ | _, Vacuous -> Vacuous
  | Confirmed, Confirmed -> Confirmed

let rows_of_commits t ~vacuous_slack commits =
  List.concat_map
    (fun proc ->
      let measured =
        Hashtbl.fold
          (fun (p, sum) st acc -> if String.equal p proc then (sum, st) :: acc else acc)
          commits []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      if measured = [] then []
      else
        let bl =
          match Predict.numbering t proc with Some bl -> bl | None -> assert false
        in
        let decoded =
          List.map
            (fun (sum, st) ->
              (sum, st, Ball_larus.decode bl sum, Predict.predict t ~proc ~sum))
            measured
        in
        (* Entries of the loop at header [h]: windows executing [h] other
           than by arriving along one of its backedges. *)
        let entries h =
          List.fold_left
            (fun acc (_, st, (path : Ball_larus.path), _) ->
              let contains = List.mem h path.blocks in
              let via_backedge =
                match path.source with
                | Ball_larus.After_backedge e -> e.Digraph.dst = h
                | Ball_larus.From_entry -> false
              in
              if contains && not via_backedge then acc + st.freq else acc)
            0 decoded
        in
        List.map
          (fun (sum, st, path, (b : Predict.exec_bounds)) ->
            let freq = st.freq in
            let tail = if b.to_exit then Predict.tail_bound t proc else tail_zero in
            let once_n =
              match b.header with Some h -> min freq (entries h) | None -> 0
            in
            let mk = mk_stat ~vacuous_slack ~freq ~once_n in
            let stats =
              [
                mk "cycles" st.tc b.per_exec.cycles ~once:b.cycles_once
                  ~tail:tail.t_cycles;
                mk "dmiss" st.td b.per_exec.dmiss ~once:b.dmiss_once
                  ~tail:tail.t_dmiss;
                mk "imiss" st.ti b.per_exec.imiss ~once:b.imiss_once
                  ~tail:tail.t_imiss;
                mk "stalls" st.ts b.per_exec.stalls ~once:0 ~tail:tail.t_stalls;
              ]
            in
            let rverdict =
              List.fold_left (fun v s -> worst v s.mverdict) Confirmed stats
            in
            {
              proc;
              sum;
              freq;
              path_desc = Format.asprintf "%a" Ball_larus.pp_path path;
              stats;
              rverdict;
            })
          decoded)
    (Predict.procs t)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run ?options ?(config = Config.default) ?inject ?engine ?budget
    ?(vacuous_slack = 8.0) ~mode prog =
  let config = Config.validate config in
  let exec_config =
    match inject with None -> config | Some inj -> apply_inject inj config
  in
  let session =
    Driver.prepare ?options ~config:exec_config ?max_instructions:budget ?engine
      ~mode prog
  in
  let t =
    Predict.create ~config ~original:session.original
      ~instrumented:session.instrumented ()
  in
  let pinfos = Hashtbl.create 16 in
  Array.iter
    (fun (ip : Proc.t) ->
      let n_orig =
        match Program.find_proc session.original ip.name with
        | Some op -> Proc.num_blocks op
        | None -> 0
      in
      let succ = Array.map Block.successors ip.blocks in
      Hashtbl.add pinfos ip.name
        { bl = Predict.numbering t ip.name; n_orig; succ })
    session.instrumented.procs;
  let totals = Counters.raw_totals (Machine.counters (Interp.machine session.vm)) in
  let o =
    {
      commits = Hashtbl.create 64;
      anomalies = [];
      stack = [];
      totals;
      lc = 0;
      ld = 0;
      li = 0;
      ls = 0;
      pinfos;
    }
  in
  Interp.set_block_probe session.vm (fun ~proc ~label ~frame ~iregs ->
      probe o ~proc ~label ~frame ~iregs);
  let trapped =
    match Driver.run session with
    | (_ : Interp.result) -> false
    | exception Interp.Trap _ -> true
  in
  finish o ~trapped;
  let rows = rows_of_commits t ~vacuous_slack o.commits in
  let count v = List.length (List.filter (fun r -> r.rverdict = v) rows) in
  let slacks =
    List.concat_map
      (fun (r : row) ->
        List.filter_map
          (fun s ->
            match s.hi with
            | Some h ->
                Some
                  (float_of_int (h - s.lo)
                  /. float_of_int (max r.freq s.measured))
            | None -> None)
          r.stats)
      rows
  in
  let mean_slack =
    match slacks with
    | [] -> 0.
    | _ -> List.fold_left ( +. ) 0. slacks /. float_of_int (List.length slacks)
  in
  {
    mode;
    engine = Engine.kind session.engine;
    injected = Option.map inject_name inject;
    rows;
    windows = Hashtbl.fold (fun _ st n -> n + st.freq) o.commits 0;
    anomalies = List.rev o.anomalies;
    trapped;
    confirmed = count Confirmed;
    refuted = count Refuted;
    vacuous = count Vacuous;
    mean_slack;
  }

let exit_code outcomes =
  if List.exists (fun o -> o.refuted > 0 || o.anomalies <> []) outcomes then 2
  else 0

let errors o =
  let refutations =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun s ->
            if s.mverdict = Refuted then
              Some
                (Printf.sprintf
                   "REFUTED %s/sum=%d %s: measured %d outside [%d, %s] (%s, freq %d)"
                   r.proc r.sum s.metric s.measured s.lo
                   (match s.hi with Some h -> string_of_int h | None -> "inf")
                   r.path_desc r.freq)
            else None)
          r.stats)
      o.rows
  in
  refutations @ List.map (fun a -> "ANOMALY " ^ a) o.anomalies

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_bound ppf s =
  Format.fprintf ppf "%d [%d,%s]" s.measured s.lo
    (match s.hi with Some h -> string_of_int h | None -> "inf")

let render_table ppf o =
  Format.fprintf ppf "pp predict: mode %s, engine %s%s%s@."
    (Instrument.mode_name o.mode)
    (Engine.kind_name o.engine)
    (match o.injected with Some i -> ", injected " ^ i | None -> "")
    (if o.trapped then " (trapped)" else "");
  Format.fprintf ppf "%-14s %5s %6s  %-20s %-16s %-16s %-16s %-9s@." "proc" "sum"
    "freq" "cycles" "dmiss" "imiss" "stalls" "verdict";
  List.iter
    (fun r ->
      let cell s = Format.asprintf "%a" pp_bound s in
      match r.stats with
      | [ c; d; i; s ] ->
          Format.fprintf ppf "%-14s %5d %6d  %-20s %-16s %-16s %-16s %-9s@."
            r.proc r.sum r.freq (cell c) (cell d) (cell i) (cell s)
            (verdict_name r.rverdict)
      | _ -> assert false)
    o.rows;
  Format.fprintf ppf
    "paths %d  windows %d  confirmed %d  vacuous %d  refuted %d  mean-slack %.2f@."
    (List.length o.rows) o.windows o.confirmed o.vacuous o.refuted o.mean_slack;
  List.iter (fun a -> Format.fprintf ppf "anomaly: %s@." a) o.anomalies

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json ppf outcomes =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let opt_int = function Some h -> string_of_int h | None -> "null" in
  let sep ppf () = Format.fprintf ppf "," in
  let pp_stat ppf s =
    Format.fprintf ppf
      "{\"metric\":%s,\"measured\":%d,\"lo\":%d,\"hi\":%s,\"verdict\":%s}"
      (str s.metric) s.measured s.lo (opt_int s.hi) (str (verdict_name s.mverdict))
  in
  let pp_row ppf r =
    Format.fprintf ppf
      "{\"proc\":%s,\"sum\":%d,\"freq\":%d,\"path\":%s,\"verdict\":%s,\"metrics\":[%a]}"
      (str r.proc) r.sum r.freq (str r.path_desc) (str (verdict_name r.rverdict))
      (Format.pp_print_list ~pp_sep:sep pp_stat)
      r.stats
  in
  let pp_outcome ppf o =
    Format.fprintf ppf
      "{\"mode\":%s,\"engine\":%s,\"inject\":%s,\"trapped\":%b,\"windows\":%d,@\n\
      \ \"confirmed\":%d,\"vacuous\":%d,\"refuted\":%d,\"mean_slack\":%.4f,@\n\
      \ \"anomalies\":[%a],@\n\
      \ \"rows\":[%a]}"
      (str (Instrument.mode_name o.mode))
      (str (Engine.kind_name o.engine))
      (match o.injected with Some i -> str i | None -> "null")
      o.trapped o.windows o.confirmed o.vacuous o.refuted o.mean_slack
      (Format.pp_print_list ~pp_sep:sep (fun ppf a ->
           Format.pp_print_string ppf (str a)))
      o.anomalies
      (Format.pp_print_list ~pp_sep:sep pp_row)
      o.rows
  in
  Format.fprintf ppf "{\"outcomes\":[%a]}@."
    (Format.pp_print_list ~pp_sep:sep pp_outcome)
    outcomes
