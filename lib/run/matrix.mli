(** The parallel run matrix: every workload under every instrumentation
    configuration — the paper's §6 evaluation grid — executed through the
    process {!Pool} and rendered as one deterministic report.

    Determinism contract: the simulated machine is deterministic, tasks are
    measured in isolated processes, and the report is a pure function of the
    outcome list in task order — so the report at [--jobs N] is
    byte-identical to the serial run for every N. *)

module Instrument = Pp_instrument.Instrument

type config = Base | Mode of Instrument.mode

val config_name : config -> string

(** [Base] plus all five instrumentation modes, in report order. *)
val all_configs : config list

type task = { workload : string; config : config }

type cell = {
  instructions : int;
  cycles : int;
  pic0 : int;  (** D-cache misses (the Table 4/5 PIC selection) *)
  pic1 : int;  (** instructions *)
  detail : string;  (** executed paths / call records / edge traversals *)
  saved : Pp_core.Profile_io.saved option;
      (** the shard's mergeable path profile, for modes that collect one *)
}

(** The full grid (default: all 18 workloads x {!all_configs}), in
    workload-major order. *)
val tasks : ?workloads:string list -> ?configs:config list -> unit -> task list

val default_budget : int

(** Measure one task in the calling process.  Also records deterministic
    per-cell metrics ([matrix.cells], [matrix.<config>.instructions],
    [matrix.cycles]) into [Pp_telemetry.Metrics.default], which the pool
    ships back from workers.  [engine] selects the execution tier
    (default {!Pp_vm.Engine.default}); both tiers produce byte-identical
    cells, so the choice only affects speed.
    @raise Failure on an unknown workload; traps propagate. *)
val measure : ?budget:int -> ?engine:Pp_vm.Engine.kind -> task -> cell

(** Measure every task, [jobs] at a time (default 1 = in-process). *)
val run :
  ?jobs:int ->
  ?timeout:float ->
  ?budget:int ->
  ?engine:Pp_vm.Engine.kind ->
  task list ->
  (task * cell Pool.outcome) list

(** {!run} plus the pool's per-task wall times and outcome counts, for
    the stderr summary footer. *)
val run_stats :
  ?jobs:int ->
  ?timeout:float ->
  ?budget:int ->
  ?engine:Pp_vm.Engine.kind ->
  task list ->
  (task * cell Pool.outcome) list * Pool.stats

(** Render the matrix; crashed and timed-out shards appear as their own
    rows, so one dying workload never hides the rest. *)
val report : (task * cell Pool.outcome) list -> string

(** Human-readable failure lines ("workload/config crashed: ..."). *)
val failures : (task * cell Pool.outcome) list -> string list
