(** The always-on aggregation service behind [pp serve].

    A Unix-domain socket listener ingests binary profile shards
    ({!Pp_core.Profile_wire} frames) from many concurrent client runs
    and merges them incrementally under a bounded memory budget —
    profiling stays on while the daemon folds shards in, instead of one
    batch merge after every run exits.

    {!Pp_core.Profile_io.merge} is commutative and associative on
    canonical shards, so the fault-free streamed result is
    byte-identical to an offline [pp merge] of the same shards whatever
    the arrival interleaving.  Faults degrade the way the text shards
    do: a torn or damaged stream contributes its valid frame prefix
    (salvaged), an unusable hello is rejected, and memory-pressure
    eviction is an explicit degraded-coverage verdict (exit 3).

    The compatibility baseline (program hash, mode, PIC selection) is
    the first stream merged: later streams that disagree with it are
    the ones rejected, whichever side of the mismatch arrived first. *)

module Metrics = Pp_telemetry.Metrics
module Trace = Pp_telemetry.Trace
module Profile_io = Pp_core.Profile_io
module Wire = Pp_core.Profile_wire
module Diag = Pp_ir.Diag

(** {2 The bounded-memory incremental aggregator}

    Exposed so [bench serve] can measure peak residency without a
    socket in the loop. *)

type agg = {
  max_records : int option;
  spill_dir : string option;
  mutable merged : Profile_io.saved option;
  mutable spilled : int;  (** spill files written *)
  mutable evicted : int;  (** path records dropped under pressure *)
  mutable peak : int;  (** peak resident records *)
  mutable conflict : Diag.t option;  (** first merge conflict, if any *)
}

(** [agg_create ?max_records ?spill_dir ()] — with a budget and a spill
    directory, over-budget tables spill to [spill-%04d.pprof] files and
    reset; with a budget alone, the coldest (lowest-frequency) records
    are evicted deterministically and the run is degraded.
    @raise Invalid_argument if [max_records <= 0]. *)
val agg_create : ?max_records:int -> ?spill_dir:string -> unit -> agg

(** Resident path-record count of the in-memory table. *)
val agg_resident : agg -> int

(** Fold one shard in, then enforce the memory budget.  [Error d] on a
    merge conflict (also latched into [conflict]). *)
val agg_add : agg -> Profile_io.saved -> (unit, Diag.t) result

(** Consolidate the spill files (deleting them) with the resident table.
    The final fold materialises the whole profile once, at shutdown. *)
val agg_finish : agg -> Profile_io.saved option

(** {2 Client side} *)

(** Connect and run [f]; retries the connect briefly (default patience
    10 s) so clients racing the daemon's bind do not fail spuriously. *)
val with_connection :
  ?patience:float ->
  socket:string ->
  (Unix.file_descr -> (unit, string) result) ->
  (unit, string) result

(** Stream one shard into the socket as wire frames.
    [corrupt_after (Some k)] simulates a client damaged mid-stream: the
    first [k] frames go out intact, then garbage, then the connection
    drops — the aggregator must salvage the [k]-frame prefix. *)
val send_saved :
  ?corrupt_after:int ->
  socket:string ->
  Profile_io.saved ->
  (unit, string) result

(** Read (salvaging if damaged) a v2 text shard and stream it. *)
val send_file :
  ?corrupt_after:int -> socket:string -> string -> (unit, string) result

(** {2 The server} *)

type verdict = {
  expected : int;
  accepted : int;  (** complete streams (hello + all procs + end) *)
  salvaged : int;  (** torn streams whose valid prefix was merged *)
  rejected : int;  (** streams contributing nothing usable *)
  spilled : int;
  evicted_records : int;
  peak_records : int;
  bytes : int;  (** total bytes ingested *)
  snapshots : int;  (** observability snapshots emitted *)
  merged : Profile_io.saved option;
  conflict : Diag.t option;
}

(** Degraded coverage — data was refused or lost: rejected shards,
    evicted records, a merge conflict, or fewer streams than promised.
    Salvaged prefixes alone do {e not} degrade the service.  The CLI
    maps this to exit 3. *)
val degraded : verdict -> bool

(** [serve ~socket ~expect ()] binds [socket] (unlinking any stale
    file), accepts and merges streams until [expect] of them have
    resolved or [stop ()] answers true, then finalizes any connection
    still open (it tore), consolidates spills, emits a final snapshot
    and returns the verdict.  The socket file is removed on exit.

    [snapshot] receives a JSON observability snapshot (ingest rate,
    shard verdict counts, merge-latency histogram, resident/peak table
    sizes): once at shutdown, once per [snapshot_every] resolved shards
    when positive, and whenever [snapshot_requested ()] answers true
    (polled each loop turn — the CLI sets a flag from SIGUSR1).
    Ingestion also feeds the default {!Metrics} registry
    ([serve.shards.*], [serve.bytes], [serve.merge_us],
    [serve.resident_records], [serve.peak_records]) and [trace] spans.
    @raise Invalid_argument if [expect <= 0]. *)
val serve :
  ?max_records:int ->
  ?spill_dir:string ->
  ?snapshot_every:int ->
  ?snapshot:(string -> unit) ->
  ?snapshot_requested:(unit -> bool) ->
  ?stop:(unit -> bool) ->
  ?trace:Trace.t ->
  socket:string ->
  expect:int ->
  unit ->
  verdict

(** Drive mode — the self-contained e2e: fork one child per thunk (each
    computes a shard and streams it in), aggregate concurrently in the
    parent, reap the children.  Returns the verdict and the count of
    client processes that exited nonzero.
    @raise Invalid_argument on an empty client list. *)
val drive :
  ?max_records:int ->
  ?spill_dir:string ->
  ?snapshot_every:int ->
  ?snapshot:(string -> unit) ->
  ?snapshot_requested:(unit -> bool) ->
  ?stop:(unit -> bool) ->
  ?trace:Trace.t ->
  socket:string ->
  (unit -> Profile_io.saved) list ->
  unit ->
  verdict * int
