module Profile_io = Pp_core.Profile_io

type fault =
  | Crash
  | Stall of float
  | Die_mid_write
  | Torn_write
  | Flip_bit of int
  | Truncate of int

type kind = Crash_heavy | Corruption_heavy | Mixed

let kind_name = function
  | Crash_heavy -> "crash-heavy"
  | Corruption_heavy -> "corruption-heavy"
  | Mixed -> "mixed"

let kind_of_name = function
  | "crash-heavy" | "crash" -> Some Crash_heavy
  | "corruption-heavy" | "corruption" -> Some Corruption_heavy
  | "mixed" -> Some Mixed
  | _ -> None

(* SplitMix64 finalizer over a fold of the inputs: avalanche quality is
   what makes per-(seed, task, attempt) draws independent.  Kept within
   62 bits (OCaml int) and masked non-negative. *)
let mask = (1 lsl 62) - 1

let mix xs =
  let golden = 0x1e3779b97f4a7c15 land mask in
  let z =
    List.fold_left (fun acc x -> (acc + (x land mask) + golden) land mask) 0 xs
  in
  let z = z lxor (z lsr 30) in
  let z = z * 0x3f58476d1ce4e5b9 land mask in
  let z = z lxor (z lsr 27) in
  let z = z * 0x14d049bb133111eb land mask in
  z lxor (z lsr 31)

let unit_float h = float_of_int (h land 0xfffffff) /. float_of_int 0x10000000

type plan = {
  kind : kind;
  seed : int;
  tasks : int;
  stall : float;
  max_attempt : int;
  faults : fault option array;  (* by task index *)
}

let draw ~kind ~stall h =
  (* Two thirds of tasks fault; the fault is drawn from the kind's mix.
     Offsets for Flip_bit/Truncate are re-mixed so they do not correlate
     with the fault choice. *)
  if unit_float (mix [ h; 1 ]) > 2.0 /. 3.0 then None
  else
    let pick = mix [ h; 2 ] in
    (* Bounded so plan listings stay readable; the writer takes it mod
       the file size anyway. *)
    let offset = mix [ h; 3 ] land 0xffff in
    let crash_fault =
      match pick mod 3 with
      | 0 -> Crash
      | 1 -> Stall stall
      | _ -> Die_mid_write
    in
    let corrupt_fault =
      match pick mod 3 with
      | 0 -> Torn_write
      | 1 -> Flip_bit offset
      | _ -> Truncate offset
    in
    match kind with
    | Crash_heavy -> Some crash_fault
    | Corruption_heavy -> Some corrupt_fault
    | Mixed -> Some (if pick land 8 = 0 then crash_fault else corrupt_fault)

let none =
  {
    kind = Mixed;
    seed = 0;
    tasks = 0;
    stall = 0.0;
    max_attempt = 0;
    faults = [||];
  }

let seeded ?(stall = 30.0) ?(max_attempt = 1) kind ~seed ~tasks =
  if tasks < 0 then invalid_arg "Faults.seeded: negative task count";
  {
    kind;
    seed;
    tasks;
    stall;
    max_attempt;
    faults =
      Array.init tasks (fun task -> draw ~kind ~stall (mix [ seed; task ]));
  }

let fault_for plan ~task ~attempt =
  if attempt > plan.max_attempt || task < 0 || task >= Array.length plan.faults
  then None
  else plan.faults.(task)

let count plan =
  Array.fold_left
    (fun acc f -> if f = None then acc else acc + 1)
    0 plan.faults

let describe = function
  | Crash -> "crash before any work"
  | Stall s -> Printf.sprintf "stall %.1fs (past the timeout)" s
  | Die_mid_write -> "killed mid-write (temp left, destination untouched)"
  | Torn_write -> "torn non-atomic write at the destination"
  | Flip_bit k -> Printf.sprintf "bit %d of the written shard flipped" k
  | Truncate k -> Printf.sprintf "written shard truncated (offset %d)" k

let summary plan =
  Printf.sprintf "%s seed %d: %d of %d tasks faulted" (kind_name plan.kind)
    plan.seed (count plan) plan.tasks

let describe_plan plan =
  Array.to_list plan.faults
  |> List.mapi (fun task f ->
         Option.map
           (fun f -> Printf.sprintf "shard %d: %s" task (describe f))
           f)
  |> List.filter_map Fun.id

let write_fault = function
  | Crash | Stall _ -> None
  | Die_mid_write -> Some Profile_io.Die_mid_write
  | Torn_write -> Some Profile_io.Torn_write
  | Flip_bit k -> Some (Profile_io.Flip_bit k)
  | Truncate k -> Some (Profile_io.Truncate_at k)
