(* The always-on aggregation service behind `pp serve`: a Unix-domain
   socket listener that ingests binary profile shards (Profile_wire
   frames) from many concurrent client runs and merges them incrementally
   under a bounded memory budget, LTT-style (Dagenais et al.): the
   profiler keeps running while the daemon folds shards in, instead of
   one batch merge after everything exits.

   Merge laws make streaming safe: Profile_io.merge is commutative and
   associative on canonical shards, so the fault-free streamed result is
   byte-identical to an offline `pp merge` of the same shards, whatever
   the arrival interleaving.  Faults degrade the same way the text shards
   do — a torn or damaged stream contributes its valid frame prefix
   (salvaged), an unusable hello is rejected, and memory-pressure
   eviction is an explicit degraded-coverage verdict (exit 3). *)

module Metrics = Pp_telemetry.Metrics
module Trace = Pp_telemetry.Trace
module Profile_io = Pp_core.Profile_io
module Wire = Pp_core.Profile_wire
module Diag = Pp_ir.Diag

(* ------------------------------------------------------------------ *)
(* The bounded-memory incremental aggregator (shared with bench). *)

type agg = {
  max_records : int option;
  spill_dir : string option;
  mutable merged : Profile_io.saved option;
  mutable spilled : int;  (* spill files written *)
  mutable evicted : int;  (* path records dropped under pressure *)
  mutable peak : int;  (* peak resident records *)
  mutable conflict : Diag.t option;
}

let agg_create ?max_records ?spill_dir () =
  Option.iter
    (fun n -> if n <= 0 then invalid_arg "Serve.agg_create: max_records <= 0")
    max_records;
  {
    max_records;
    spill_dir;
    merged = None;
    spilled = 0;
    evicted = 0;
    peak = 0;
    conflict = None;
  }

let resident_records (s : Profile_io.saved) =
  List.fold_left
    (fun acc (_, _, paths) -> acc + List.length paths)
    0 s.Profile_io.procs

let agg_resident t =
  match t.merged with None -> 0 | Some s -> resident_records s

let spill_path dir k = Filename.concat dir (Printf.sprintf "spill-%04d.pprof" k)

(* Deterministic eviction: drop the lowest-frequency path records
   (ties broken by procedure then path sum) until the table fits.  What
   remains under-counts — an explicit degraded-coverage outcome. *)
let evict (s : Profile_io.saved) ~keep =
  let entries =
    List.concat_map
      (fun (proc, _, paths) ->
        List.map
          (fun (sum, (m : Pp_core.Profile.path_metrics)) ->
            (m.Pp_core.Profile.freq, proc, sum))
          paths)
      s.Profile_io.procs
  in
  let resident = List.length entries in
  if resident <= keep then (s, 0)
  else begin
    let doomed = List.sort compare entries in
    let dropped = Hashtbl.create 64 in
    List.iteri
      (fun i (_, proc, sum) ->
        if i < resident - keep then Hashtbl.replace dropped (proc, sum) ())
      doomed;
    let procs =
      List.map
        (fun (proc, npaths, paths) ->
          ( proc,
            npaths,
            List.filter
              (fun (sum, _) -> not (Hashtbl.mem dropped (proc, sum)))
              paths ))
        s.Profile_io.procs
    in
    (Profile_io.canonical { s with Profile_io.procs }, resident - keep)
  end

(* Fold one shard in; enforce the memory budget afterwards.  Under
   pressure the aggregator spills the resident table to disk when it has
   somewhere to put it, otherwise it evicts coldest-first and the run is
   degraded. *)
let agg_add t (s : Profile_io.saved) =
  match
    match t.merged with
    | None -> Ok (Profile_io.canonical s)
    | Some acc -> Profile_io.merge acc s
  with
  | Error d ->
      if t.conflict = None then t.conflict <- Some d;
      Error d
  | Ok merged ->
      t.merged <- Some merged;
      let resident = resident_records merged in
      t.peak <- max t.peak resident;
      (match t.max_records with
      | Some budget when resident > budget -> (
          match t.spill_dir with
          | Some dir ->
              Profile_io.to_file (spill_path dir t.spilled) merged;
              t.spilled <- t.spilled + 1;
              t.merged <- None
          | None ->
              let survivor, dropped = evict merged ~keep:budget in
              t.merged <- Some survivor;
              t.evicted <- t.evicted + dropped)
      | _ -> ());
      Ok ()

(* Consolidate the spill files with the resident table.  The ingest path
   is what the budget bounds; this final fold necessarily materialises
   the whole profile once, at shutdown, to write it out. *)
let agg_finish t =
  let spills = List.init t.spilled (fun k -> k) in
  List.fold_left
    (fun acc k ->
      let path = spill_path (Option.get t.spill_dir) k in
      let s = Profile_io.of_file path in
      Sys.remove path;
      match acc with
      | None -> Some s
      | Some acc -> (
          match Profile_io.merge acc s with
          | Ok m -> Some m
          | Error d ->
              if t.conflict = None then t.conflict <- Some d;
              Some acc))
    t.merged spills

(* ------------------------------------------------------------------ *)
(* Client-side: stream a shard into the socket. *)

(* Clients may race the daemon's bind (drive mode forks them before the
   listener exists; CI starts them as separate processes): retry the
   connect briefly before giving up. *)
let with_connection ?(patience = 10.0) ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. patience in
  let rec attempt () =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EINTR), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.02;
        attempt ()
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))
  in
  attempt ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

(* [corrupt_after (Some k)] simulates a client damaged mid-stream: the
   first [k] frames go out intact, then a burst of garbage, then the
   connection drops — the aggregator must salvage the k-frame prefix. *)
let send_saved ?corrupt_after ~socket (s : Profile_io.saved) =
  with_connection ~socket (fun fd ->
      let frames = List.map Wire.encode_frame (Wire.frames_of_saved s) in
      (match corrupt_after with
      | None -> List.iter (write_all fd) frames
      | Some k ->
          List.iteri (fun i f -> if i < k then write_all fd f) frames;
          write_all fd (String.make 64 '\xff'));
      Ok ())

let send_file ?corrupt_after ~socket path =
  match Profile_io.salvage_file path with
  | Error d -> Error (Diag.to_string d)
  | Ok (s, _) -> send_saved ?corrupt_after ~socket s

(* ------------------------------------------------------------------ *)
(* The server. *)

type verdict = {
  expected : int;
  accepted : int;
  salvaged : int;
  rejected : int;
  spilled : int;
  evicted_records : int;
  peak_records : int;
  bytes : int;
  snapshots : int;
  merged : Profile_io.saved option;
  conflict : Diag.t option;
}

(* Degraded coverage: data was refused or lost (rejected shards, evicted
   records, a merge conflict, or fewer streams than promised).  Salvaged
   prefixes alone do not degrade the service — the damage was contained
   and everything recoverable was kept, matching `pp chaos` recovery. *)
let degraded v =
  v.rejected > 0 || v.evicted_records > 0 || v.conflict <> None
  || v.accepted + v.salvaged < v.expected

type conn = {
  fd : Unix.file_descr;
  reader : Wire.reader;
  mutable header : Wire.header option;
  mutable frames : int;  (* complete frames consumed *)
  mutable procs : int;  (* Proc frames merged *)
  mutable summary : Wire.summary option;
  mutable failed : string option;
}

type state = {
  agg : agg;
  mutable accepted : int;
  mutable salvaged : int;
  mutable rejected : int;
  mutable bytes : int;
  mutable snapshots : int;
  expected : int;
  started : float;
  trace : Trace.t;
}

let reg = Metrics.default

let json_snapshot st =
  let live_hist name =
    match List.assoc_opt name (Metrics.snapshot reg) with
    | Some (Metrics.Histogram { count; sum; buckets }) ->
        Printf.sprintf "{\"count\":%d,\"sum\":%d,\"buckets\":[%s]}" count sum
          (String.concat ","
             (List.map
                (fun (k, n) -> Printf.sprintf "[%d,%d]" k n)
                buckets))
    | _ -> "{\"count\":0,\"sum\":0,\"buckets\":[]}"
  in
  let elapsed = Unix.gettimeofday () -. st.started in
  let done_ = st.accepted + st.salvaged + st.rejected in
  Printf.sprintf
    "{\"expected\":%d,\"accepted\":%d,\"salvaged\":%d,\"rejected\":%d,\
     \"bytes\":%d,\"resident_records\":%d,\"peak_records\":%d,\
     \"spilled\":%d,\"evicted_records\":%d,\"elapsed_s\":%.3f,\
     \"ingest_rate_per_s\":%.3f,\"merge_us\":%s}"
    st.expected st.accepted st.salvaged st.rejected st.bytes
    (agg_resident st.agg) st.agg.peak st.agg.spilled st.agg.evicted elapsed
    (if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0)
    (live_hist "serve.merge_us")

(* Merge one decoded frame into the service state.  Returns [false] when
   the connection must stop being read (protocol violation). *)
let ingest_frame st conn frame =
  conn.frames <- conn.frames + 1;
  match (frame : Wire.frame) with
  | Wire.Hello h -> (
      match conn.header with
      | Some _ ->
          conn.failed <- Some "duplicate hello frame";
          false
      | None -> (
          conn.header <- Some h;
          (* An incompatible stream is refused before any of its records
             touch the table: the hello carries everything merge would
             reject on. *)
          match st.agg.merged with
          | Some acc
            when acc.Profile_io.program_hash <> h.Wire.program_hash
                 || acc.Profile_io.mode <> h.Wire.mode
                 || acc.Profile_io.pic0 <> h.Wire.pic0
                 || acc.Profile_io.pic1 <> h.Wire.pic1 ->
              conn.failed <- Some "incompatible shard header";
              false
          | _ -> true))
  | Wire.Proc p -> (
      match conn.header with
      | None ->
          conn.failed <- Some "proc frame before hello";
          false
      | Some h -> (
          let mini = Wire.saved_of_frames h [ p ] in
          let t0 = Unix.gettimeofday () in
          let result =
            Trace.with_span st.trace "serve.merge" (fun () ->
                agg_add st.agg mini)
          in
          Metrics.observe reg "serve.merge_us"
            (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
          Metrics.set_gauge reg "serve.resident_records"
            (agg_resident st.agg);
          match result with
          | Ok () ->
              conn.procs <- conn.procs + 1;
              true
          | Error d ->
              conn.failed <- Some (Diag.to_string d);
              false))
  | Wire.End s ->
      conn.summary <- Some s;
      (* Anything after the end frame is noise; stop reading. *)
      false

(* A connection is over (EOF, corruption or protocol violation): decide
   what it was.  [Accepted] — hello + promised procs + end all arrived.
   [Salvaged] — a decodable prefix was merged but the stream tore.
   [Rejected] — nothing usable (no hello, or refused before any record
   was merged). *)
let close_verdict conn =
  match (conn.failed, conn.header, conn.summary) with
  | None, Some _, Some s when conn.procs = s.Wire.nprocs -> `Accepted
  | _, None, _ -> `Rejected "no usable hello frame"
  | Some msg, Some _, _ when conn.procs = 0 -> `Rejected msg
  | Some msg, Some _, _ -> `Salvaged msg
  | None, Some _, Some _ -> `Salvaged "proc count disagrees with end frame"
  | None, Some _, None -> `Salvaged "stream ended before its end frame"

let finalize_conn st conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  (match close_verdict conn with
  | `Accepted ->
      st.accepted <- st.accepted + 1;
      Metrics.incr reg "serve.shards.accepted" 1
  | `Salvaged msg ->
      st.salvaged <- st.salvaged + 1;
      Metrics.incr reg "serve.shards.salvaged" 1;
      ignore msg;
      Trace.instant st.trace "serve.salvaged"
  | `Rejected msg ->
      st.rejected <- st.rejected + 1;
      Metrics.incr reg "serve.shards.rejected" 1;
      ignore msg;
      Trace.instant st.trace "serve.rejected");
  Metrics.set_gauge reg "serve.peak_records" st.agg.peak

let serve_chunk = Bytes.create 65536

(* Drain one readable connection; [true] while it stays open. *)
let service_conn st conn =
  match Unix.read conn.fd serve_chunk 0 (Bytes.length serve_chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error (_, _, _) ->
      finalize_conn st conn;
      false
  | 0 ->
      finalize_conn st conn;
      false
  | n ->
      st.bytes <- st.bytes + n;
      Metrics.incr reg "serve.bytes" n;
      Wire.feed conn.reader (Bytes.sub_string serve_chunk 0 n);
      let rec pump () =
        if conn.failed <> None || conn.summary <> None then begin
          finalize_conn st conn;
          false
        end
        else
          match Wire.next conn.reader with
          | `Need_more -> true
          | `Corrupt msg ->
              conn.failed <- Some msg;
              finalize_conn st conn;
              false
          | `Frame f ->
              let keep = ingest_frame st conn f in
              if keep then pump ()
              else begin
                finalize_conn st conn;
                false
              end
      in
      pump ()

let serve ?max_records ?spill_dir ?(snapshot_every = 0)
    ?(snapshot = fun _ -> ()) ?(snapshot_requested = fun () -> false)
    ?(stop = fun () -> false) ?(trace = Trace.null) ~socket ~expect () =
  if expect <= 0 then invalid_arg "Serve.serve: expect <= 0";
  (if Sys.file_exists socket then
     try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 64;
  let st =
    {
      agg = agg_create ?max_records ?spill_dir ();
      accepted = 0;
      salvaged = 0;
      rejected = 0;
      bytes = 0;
      snapshots = 0;
      expected = expect;
      started = Unix.gettimeofday ();
      trace;
    }
  in
  let take_snapshot () =
    st.snapshots <- st.snapshots + 1;
    snapshot (json_snapshot st)
  in
  let conns = ref [] in
  let finished () = st.accepted + st.salvaged + st.rejected >= expect in
  let last_done = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !conns;
      if Sys.file_exists socket then
        try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      while (not (finished ())) && not (stop ()) do
        let fds = listener :: List.map (fun c -> c.fd) !conns in
        let readable, _, _ =
          (* A short timeout keeps the signal-driven hooks (snapshots,
             shutdown) responsive while the socket is quiet. *)
          try Unix.select fds [] [] 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.mem listener readable then begin
          match Unix.accept listener with
          | fd, _ ->
              Unix.set_nonblock fd;
              conns :=
                {
                  fd;
                  reader = Wire.reader ();
                  header = None;
                  frames = 0;
                  procs = 0;
                  summary = None;
                  failed = None;
                }
                :: !conns
          | exception Unix.Unix_error (_, _, _) -> ()
        end;
        conns :=
          List.filter
            (fun c ->
              if List.mem c.fd readable then service_conn st c else true)
            !conns;
        if snapshot_requested () then take_snapshot ();
        let done_ = st.accepted + st.salvaged + st.rejected in
        if snapshot_every > 0 && done_ / snapshot_every > !last_done then begin
          last_done := done_ / snapshot_every;
          take_snapshot ()
        end
      done;
      (* Shutdown (all expected streams in, or asked to stop): streams
         still open at this point tore. *)
      List.iter (fun c -> finalize_conn st c) !conns;
      conns := [];
      let merged = agg_finish st.agg in
      take_snapshot ();
      {
        expected = expect;
        accepted = st.accepted;
        salvaged = st.salvaged;
        rejected = st.rejected;
        spilled = st.agg.spilled;
        evicted_records = st.agg.evicted;
        peak_records = st.agg.peak;
        bytes = st.bytes;
        snapshots = st.snapshots;
        merged;
        conflict = st.agg.conflict;
      })

(* ------------------------------------------------------------------ *)
(* Drive mode: fork the clients ourselves — the self-contained e2e the
   CI gate runs.  Each thunk computes one shard in a forked child and
   streams it in; the parent aggregates concurrently. *)

let drive ?max_records ?spill_dir ?snapshot_every ?snapshot
    ?snapshot_requested ?stop ?trace ~socket clients () =
  let expect = List.length clients in
  if expect = 0 then invalid_arg "Serve.drive: no clients";
  (* Clients fork before the parent binds; with_connection's connect
     retry absorbs the race. *)
  let pids =
    List.map
      (fun thunk ->
        match Unix.fork () with
        | 0 ->
            let code =
              match
                let s = thunk () in
                send_saved ~socket s
              with
              | Ok () -> 0
              | Error _ -> 1
              | exception _ -> 1
            in
            Unix._exit code
        | pid -> pid)
      clients
  in
  let verdict =
    serve ?max_records ?spill_dir ?snapshot_every ?snapshot
      ?snapshot_requested ?stop ?trace ~socket ~expect ()
  in
  let failures =
    List.fold_left
      (fun acc pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc
        | _ -> acc + 1)
      0 pids
  in
  (verdict, failures)
