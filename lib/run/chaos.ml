module Profile_io = Pp_core.Profile_io
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Diag = Pp_ir.Diag

type shard_state =
  | Recovered
  | Salvaged of Profile_io.salvage_report
  | Lost of string

type report = {
  shards : int;
  stats : Pool.stats;
  states : shard_state list;
  ok : int;
  salvaged : int;
  lost : int;
  identical : bool;
  merged : Profile_io.saved option;
  reference : Profile_io.saved;
}

let degraded r = r.salvaged > 0 || r.lost > 0

let coverage r =
  let covered = r.ok + r.salvaged in
  Printf.sprintf "coverage: %d/%d shards%s" covered r.shards
    (if degraded r then " (degraded)" else "")

let shard_path dir k = Filename.concat dir (Printf.sprintf "shard-%d.pprof" k)

let profile_once ?budget ?engine ~mode prog =
  let session = Driver.prepare ?max_instructions:budget ?engine ~mode prog in
  ignore (Driver.run session);
  Profile_io.of_profile
    ~program_hash:(Profile_io.program_hash prog)
    ~mode:(Instrument.mode_name mode)
    (Driver.path_profile session)

let run ~dir ?(mode = Instrument.Flow_hw) ?budget ?engine ?(jobs = 2)
    ?(retries = 3) ?(timeout = 10.0) ?sleep ~plan ~shards prog =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* Clear leftovers so a previous run can never mask a lost shard. *)
  for k = 0 to shards - 1 do
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ shard_path dir k; shard_path dir k ^ ".tmp" ]
  done;
  match profile_once ?budget ?engine ~mode prog with
  | exception e ->
      Error
        (Diag.error (Diag.proc_loc "<chaos>") "fault-free run failed: %s"
           (Printexc.to_string e))
  | one -> (
      match Profile_io.merge_all (List.init shards (fun _ -> one)) with
      | Error d -> Error d
      | Ok reference ->
          let task ~attempt k =
            let fault = Faults.fault_for plan ~task:k ~attempt in
            (match fault with
            | Some Faults.Crash -> failwith "injected crash"
            | Some (Faults.Stall s) -> Unix.sleepf s
            | _ -> ());
            let saved = profile_once ?budget ?engine ~mode prog in
            Profile_io.to_file
              ?fault:(Option.bind fault Faults.write_fault)
              (shard_path dir k) saved;
            k
          in
          (* The worker cannot see post-write corruption; the parent
             re-reads each shard strictly and demotes damage to a retry. *)
          let verify k _ =
            match Profile_io.of_file (shard_path dir k) with
            | _ -> Ok ()
            | exception Profile_io.Parse_error (_, msg) -> Error msg
            | exception Sys_error msg -> Error msg
          in
          let _, stats =
            Pool.map_retry ~jobs ~timeout ~retries ?sleep ~verify task
              (List.init shards (fun k -> k))
          in
          let states =
            List.init shards (fun k ->
                match Profile_io.of_file (shard_path dir k) with
                | _ -> Recovered
                | exception Profile_io.Parse_error _ -> (
                    match Profile_io.salvage_file (shard_path dir k) with
                    | Ok (_, Some rep) -> Salvaged rep
                    | Ok (_, None) -> Recovered
                    | Error d -> Lost (Diag.to_string d))
                | exception Sys_error msg -> Lost msg)
          in
          let count p = List.length (List.filter p states) in
          let ok = count (function Recovered -> true | _ -> false) in
          let salvaged = count (function Salvaged _ -> true | _ -> false) in
          let lost = count (function Lost _ -> true | _ -> false) in
          let recovered =
            List.concat
              (List.init shards (fun k ->
                   match Profile_io.salvage_file (shard_path dir k) with
                   | Ok (s, _) -> [ s ]
                   | Error _ -> []))
          in
          let merged =
            match recovered with
            | [] -> None
            | _ -> (
                match Profile_io.merge_all recovered with
                | Ok m -> Some m
                | Error _ -> None)
          in
          let identical =
            match merged with
            | Some m ->
                Profile_io.to_string m = Profile_io.to_string reference
            | None -> false
          in
          Ok
            {
              shards;
              stats;
              states;
              ok;
              salvaged;
              lost;
              identical;
              merged;
              reference;
            })
