module Crc32 = Pp_core.Crc32
module Interp = Pp_vm.Interp
module Event = Pp_machine.Event

let path ~dir k = Filename.concat dir (Printf.sprintf "shard-%d.ckpt" k)

(* Line format, every line CRC-tagged ({!Crc32.tag}):
     ckpt 1 <shard> <key> <instructions> <cycles> <nout> <ncounters>
     out i <int> | out f <hexfloat>
     counter <event-name> <value>
   Floats are emitted as %h hex literals so they round-trip exactly —
   a resumed run must reprint byte-identical output. *)

let encode ~key k (r : Interp.result) =
  let buf = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (Crc32.tag s ^ "\n")) fmt
  in
  line "ckpt 1 %d %s %d %d %d %d" k key r.Interp.instructions r.Interp.cycles
    (List.length r.Interp.output)
    (List.length r.Interp.counters);
  List.iter
    (function
      | Interp.Oint n -> line "out i %d" n
      | Interp.Ofloat x -> line "out f %h" x)
    r.Interp.output;
  List.iter
    (fun (e, v) -> line "counter %s %d" (Event.name e) v)
    r.Interp.counters;
  Buffer.contents buf

let save ~dir ~key k r =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let dst = path ~dir k in
  let tmp = dst ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (encode ~key k r);
  close_out oc;
  Sys.rename tmp dst

(* Decoding: any surprise — bad CRC, wrong key or shard number, counts
   that disagree with the header, an unknown event — yields None and the
   shard reruns. *)

exception Reject

let decode ~key k text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let checked =
    List.map (fun l -> match Crc32.untag l with
      | Some c -> c
      | None -> raise Reject)
      lines
  in
  match checked with
  | header :: body -> (
      match String.split_on_char ' ' header with
      | [ "ckpt"; "1"; shard; key'; insts; cycles; nout; ncounters ]
        when int_of_string_opt shard = Some k && key' = key ->
          let int s =
            match int_of_string_opt s with Some n -> n | None -> raise Reject
          in
          let nout = int nout and ncounters = int ncounters in
          if List.length body <> nout + ncounters then raise Reject;
          let out_lines, counter_lines =
            (List.filteri (fun i _ -> i < nout) body,
             List.filteri (fun i _ -> i >= nout) body)
          in
          let output =
            List.map
              (fun l ->
                match String.split_on_char ' ' l with
                | [ "out"; "i"; n ] -> Interp.Oint (int n)
                | [ "out"; "f"; x ] -> (
                    match float_of_string_opt x with
                    | Some x -> Interp.Ofloat x
                    | None -> raise Reject)
                | _ -> raise Reject)
              out_lines
          in
          let counters =
            List.map
              (fun l ->
                match String.split_on_char ' ' l with
                | [ "counter"; name; v ] -> (
                    match Event.of_name name with
                    | Some e -> (e, int v)
                    | None -> raise Reject)
                | _ -> raise Reject)
              counter_lines
          in
          Some
            {
              Interp.instructions = int insts;
              cycles = int cycles;
              output;
              counters;
            }
      | _ -> None)
  | [] -> None

let load ~dir ~key k =
  let file = path ~dir k in
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error _ -> None
  | text -> ( try decode ~key k text with Reject -> None)
