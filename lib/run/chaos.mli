(** Seeded end-to-end chaos runs: prove the fault-tolerance stack.

    A chaos run profiles the same program across [shards] pool workers
    while a deterministic {!Faults} plan makes roughly two thirds of them
    fail — crash, stall past the timeout, die mid-shard-write, or
    complete a write that is then corrupted on disk.  The pool retries
    under its backoff schedule, a parent-side verify pass demotes
    silently-corrupted shards to failures, and whatever lands on disk is
    read back strictly or salvaged.

    The payoff is the equality check: because faults only fire on early
    attempts, a retry budget of two or more must converge, and the merged
    profile recovered {e from disk} must be byte-identical to a fault-free
    reference.  [pp chaos] runs this and CI gates on it. *)

module Profile_io = Pp_core.Profile_io

(** How one shard's file ended up after the dust settled. *)
type shard_state =
  | Recovered  (** strict read succeeded — fully intact *)
  | Salvaged of Profile_io.salvage_report
      (** damaged, valid record prefix recovered *)
  | Lost of string  (** missing or unrecoverable (the reason) *)

type report = {
  shards : int;
  stats : Pool.stats;  (** pool outcome counts, attempts, quarantines *)
  states : shard_state list;  (** by shard index *)
  ok : int;  (** shards read back fully intact *)
  salvaged : int;
  lost : int;
  identical : bool;
      (** the merged recovered profile is byte-identical to the
          fault-free reference — the chaos invariant *)
  merged : Profile_io.saved option;
      (** merge of everything recovered from disk; [None] if nothing
          survived or the shards refused to merge *)
  reference : Profile_io.saved;  (** fault-free merge of [shards] copies *)
}

(** [degraded r] — some shard is salvaged or lost, so coverage is
    partial. *)
val degraded : report -> bool

(** Coverage line for reports, e.g. ["coverage: 3/4 shards (degraded)"]
    or ["coverage: 4/4 shards"].  Salvaged shards count as covered but
    still mark the run degraded. *)
val coverage : report -> string

(** Run the chaos experiment in [dir] (shard files are written there;
    the directory is created if needed).  The reference profile is
    computed in-process first, fault-free.  [retries] is the pool
    attempt budget (default 3 — enough for any plan with the default
    [max_attempt]); [timeout] (default 10s) turns stalls into kills when
    [jobs >= 2] (default 2); [sleep] stubs the backoff waits in tests.
    [engine] selects the execution tier for the reference and every shard
    (default {!Pp_vm.Engine.default}); the chaos invariant holds under
    either tier since both produce byte-identical profiles.
    Returns [Error] only if the program itself cannot be profiled
    fault-free. *)
val run :
  dir:string ->
  ?mode:Pp_instrument.Instrument.mode ->
  ?budget:int ->
  ?engine:Pp_vm.Engine.kind ->
  ?jobs:int ->
  ?retries:int ->
  ?timeout:float ->
  ?sleep:(float -> unit) ->
  plan:Faults.plan ->
  shards:int ->
  Pp_ir.Program.t ->
  (report, Pp_ir.Diag.t) result
