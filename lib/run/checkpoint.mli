(** Resumable sharded runs: one checkpoint file per completed shard.

    [pp run --checkpoint-dir DIR] saves each shard's result
    ({!Pp_vm.Interp.result}) as [DIR/shard-<k>.ckpt] the moment the shard
    completes.  A re-invocation after a crash loads the valid checkpoints,
    runs only the missing shards, and sums in shard order — so the final
    stdout is byte-identical to an uninterrupted run.

    Checkpoints use the same hardening as profile shards: every line
    carries a {!Pp_core.Crc32} token, floats round-trip exactly (hex
    notation), and writes are temp-then-rename atomic.  A checkpoint that
    is damaged, truncated, or was written for a different program (the
    [key] digest disagrees) loads as [None] — the shard simply reruns;
    resumption is never allowed to poison a result. *)

(** [DIR/shard-<k>.ckpt]. *)
val path : dir:string -> int -> string

(** Atomically write shard [k]'s result.  [key] identifies the program
    and run configuration (e.g. the program hash plus the budget); a
    later {!load} with a different key ignores the file.  Creates [dir]
    if needed.
    @raise Sys_error if the directory cannot be created or written. *)
val save : dir:string -> key:string -> int -> Pp_vm.Interp.result -> unit

(** Load shard [k]'s checkpoint: [None] if absent, damaged in any way,
    or recorded under a different [key]. *)
val load : dir:string -> key:string -> int -> Pp_vm.Interp.result option
