(* Symbolic execution of one basic block of an instrumented procedure.

   The scanner tracks just enough structure to recognise the shapes the
   instrumenter emits — path-register arithmetic, counter-table address
   computation, counter increments, PIC save/zero/restore — while treating
   everything else (the original program's code) as opaque.  The path
   register's value is tracked relative to its value at block entry, so a
   block's summary is input-independent and the verifier's dataflow can
   combine summaries along every path. *)

module I = Pp_ir.Instr
module Block = Pp_ir.Block

(* A path-counter table cell address: [&global + (P + key_off) * stride],
   where P is the path register's value at block entry. *)
type cell = { cglobal : string; stride : int; key_off : int }

type sval =
  | Top
  | Entry of int  (** the value register [r] held at block entry *)
  | Const of int
  | Global of string * int  (** [&g + off] *)
  | Path of int  (** [P + n] *)
  | Path_scaled of int * int  (** [(P + n) * m] *)
  | Cell_addr of cell
  | Cell_val of cell * int  (** value loaded from [(cell, byte off)] *)
  | Cell_plus of cell * int * int  (** cell value + constant *)
  | Cell_plus_pic of cell * int * int  (** cell value + a PIC reading *)
  | Glob_val of string * int * int  (** global [g] at byte [off], + const *)
  | Pic_read of int * int  (** counter, reading instruction index *)
  | Frame_addr of int

(* The path register at block exit, relative to its value at entry. *)
type pstate =
  | Prel of int  (** P_out = P_in + n *)
  | Pabs of int  (** P_out = n (reset) *)
  | Ptop  (** clobbered by something the scanner cannot model *)

type event =
  | Freq_inc of { cell : cell; at : int }
      (** [table[(P+key_off)*stride] += 1] — an array-table path commit *)
  | Metric_inc of { cell : cell; off : int; pic : int; at : int }
      (** [cell.off += PIC_pic] — a hardware-metric accumulate *)
  | Ctr_inc of { global : string; off : int; at : int }
      (** [g[off] += 1] at a static offset — an edge-profile counter *)
  | Path_prof of {
      kind : [ `Hash | `Hash_hw | `Cct ];
      table : int;
      key : sval;
      at : int;
    }
  | Cct_op of { op : I.prof_op; at : int }
  | Hw_zero of { at : int }
  | Hw_read of { counter : int; reg : int; at : int }
  | Hw_write of { counter : int; src : sval; at : int }
  | Call_at of { site : int; indirect : bool; at : int }

type t = { p_out : pstate; events : event list; defs : int list }

type path_home = Home_reg of int | Home_slot of int

let pstate_of_sval = function
  | Path n -> Prel n
  | Const k -> Pabs k
  | _ -> Ptop

let run ?path_home ~niregs (b : Block.t) =
  let env = Array.init (max 1 niregs) (fun r -> Entry r) in
  let p = ref (Prel 0) in
  (match path_home with
  | Some (Home_reg r) -> env.(r) <- Path 0
  | Some (Home_slot _) | None -> ());
  let events = ref [] in
  let defs = ref [] in
  let push e = events := e :: !events in
  let read r = env.(r) in
  let p_read () =
    match !p with Prel n -> Path n | Pabs k -> Const k | Ptop -> Top
  in
  let is_home_reg r =
    match path_home with Some (Home_reg pr) -> r = pr | _ -> false
  in
  let home_slot_off =
    match path_home with Some (Home_slot o) -> Some o | _ -> None
  in
  let set r v =
    env.(r) <- v;
    defs := r :: !defs;
    if is_home_reg r then p := pstate_of_sval v
  in
  let clobber instr =
    List.iter (fun r -> set r Top) (I.idefs instr)
  in
  List.iteri
    (fun at instr ->
      match instr with
      | I.Iconst (r, k) -> set r (Const k)
      | I.Iconst_sym (r, g) -> set r (Global (g, 0))
      | I.Imov (rd, rs) -> set rd (read rs)
      | I.Ibinop_imm (I.Add, rd, rs, imm) ->
          let v =
            match read rs with
            | Const k -> Const (k + imm)
            | Path n -> Path (n + imm)
            | Global (g, o) -> Global (g, o + imm)
            | Cell_val (c, o) -> Cell_plus (c, o, imm)
            | Cell_plus (c, o, k) -> Cell_plus (c, o, k + imm)
            | Glob_val (g, o, k) -> Glob_val (g, o, k + imm)
            | Frame_addr o -> Frame_addr (o + imm)
            | _ -> Top
          in
          set rd v
      | I.Ibinop_imm (I.Sub, rd, rs, imm) ->
          let v =
            match read rs with
            | Const k -> Const (k - imm)
            | Path n -> Path (n - imm)
            | _ -> Top
          in
          set rd v
      | I.Ibinop_imm (I.Mul, rd, rs, m) ->
          let v =
            match read rs with
            | Const k -> Const (k * m)
            | Path n -> Path_scaled (n, m)
            | _ -> Top
          in
          set rd v
      | I.Ibinop (I.Add, rd, r1, r2) ->
          let v =
            match (read r1, read r2) with
            | Const a, Const b -> Const (a + b)
            | Const a, Path n | Path n, Const a -> Path (n + a)
            | Global (g, 0), Path_scaled (n, m)
            | Path_scaled (n, m), Global (g, 0) ->
                Cell_addr { cglobal = g; stride = m; key_off = n }
            | Global (g, o), Const k | Const k, Global (g, o) ->
                Global (g, o + k)
            | Cell_val (c, o), Pic_read (k, _) | Pic_read (k, _), Cell_val (c, o)
              ->
                Cell_plus_pic (c, o, k)
            | _ -> Top
          in
          set rd v
      | I.Load (rd, ra, off) ->
          let v =
            match read ra with
            | Cell_addr c -> Cell_val (c, off)
            | Global (g, o) -> Glob_val (g, o + off, 0)
            | Frame_addr o when home_slot_off = Some (o + off) -> p_read ()
            | _ -> Top
          in
          set rd v
      | I.Store (rs, ra, off) -> (
          match read ra with
          | Cell_addr c -> (
              match read rs with
              | Cell_plus (c', o', 1) when c' = c && o' = off && off = 0 ->
                  push (Freq_inc { cell = c; at })
              | Cell_plus_pic (c', o', pic) when c' = c && o' = off ->
                  push (Metric_inc { cell = c; off; pic; at })
              | _ -> ())
          | Global (g, o) -> (
              match read rs with
              | Glob_val (g', o', 1) when g' = g && o' = o + off ->
                  push (Ctr_inc { global = g; off = o + off; at })
              | _ -> ())
          | Frame_addr o when home_slot_off = Some (o + off) ->
              p := pstate_of_sval (read rs)
          | _ -> ())
      | I.Frameaddr (rd, off) -> set rd (Frame_addr off)
      | I.Hwread (rd, k) ->
          push (Hw_read { counter = k; reg = rd; at });
          set rd (Pic_read (k, at))
      | I.Hwzero -> push (Hw_zero { at })
      | I.Hwwrite (rs, k) -> push (Hw_write { counter = k; src = read rs; at })
      | I.Call { site; ret; _ } ->
          push (Call_at { site; indirect = false; at });
          (match ret with I.Rint r -> set r Top | I.Rfloat _ | I.Rnone -> ())
      | I.Callind { site; ret; _ } ->
          push (Call_at { site; indirect = true; at });
          (match ret with I.Rint r -> set r Top | I.Rfloat _ | I.Rnone -> ())
      | I.Prof op -> (
          match op with
          | I.Path_commit_hash { table; path_reg } ->
              push (Path_prof { kind = `Hash; table; key = read path_reg; at })
          | I.Path_commit_hash_hw { table; path_reg } ->
              push
                (Path_prof { kind = `Hash_hw; table; key = read path_reg; at })
          | I.Path_commit_cct { table; path_reg } ->
              push (Path_prof { kind = `Cct; table; key = read path_reg; at })
          | I.Cct_enter _ | I.Cct_exit | I.Cct_call _ | I.Cct_metric_enter
          | I.Cct_metric_exit | I.Cct_metric_backedge ->
              push (Cct_op { op; at }))
      | instr -> clobber instr)
    b.Block.instrs;
  { p_out = !p; events = List.rev !events; defs = List.rev !defs }
