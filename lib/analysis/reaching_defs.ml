module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module Bitset = Dataflow.Bitset
module Gen_kill = Dataflow.Gen_kill

type site = {
  block : Block.label;
  index : int;  (** -1 for the implicit parameter definition at entry *)
  reg : int;  (** encoded as in {!Regs} *)
}

type t = {
  cfg : Cfg.t;
  regs : Regs.t;
  sites : site array;
  result : Gen_kill.result;
}

let compute (cfg : Cfg.t) =
  let p = cfg.Cfg.proc in
  let regs = Regs.of_proc p in
  let sites = ref [] in
  let nsites = ref 0 in
  let add_site s =
    sites := s :: !sites;
    incr nsites;
    !nsites - 1
  in
  (* Parameters are defined "before" the entry block. *)
  let param_sites =
    List.map
      (fun reg -> add_site { block = p.Pp_ir.Proc.entry; index = -1; reg })
      (Regs.params regs p)
  in
  let by_reg = Array.make (Regs.universe regs) [] in
  let block_sites =
    Array.map
      (fun (b : Block.t) ->
        List.mapi
          (fun i instr ->
            List.map
              (fun reg ->
                let id = add_site { block = b.Block.label; index = i; reg } in
                by_reg.(reg) <- id :: by_reg.(reg);
                (id, reg))
              (Regs.defs regs instr))
          b.Block.instrs
        |> List.concat)
      p.Pp_ir.Proc.blocks
  in
  List.iter2
    (fun id reg -> by_reg.(reg) <- id :: by_reg.(reg))
    param_sites
    (Regs.params regs p);
  let universe = !nsites in
  let sites = Array.of_list (List.rev !sites) in
  let gen_kill =
    Array.map
      (fun defs ->
        let gen = Bitset.create universe in
        let kill = Bitset.create universe in
        (* Later defs of the same register shadow earlier ones. *)
        List.iter
          (fun (id, reg) ->
            List.iter
              (fun other ->
                Bitset.remove gen other;
                Bitset.add kill other)
              by_reg.(reg);
            Bitset.add gen id;
            Bitset.remove kill id)
          defs;
        (gen, kill))
      block_sites
  in
  let init = Bitset.create universe in
  List.iter (Bitset.add init) param_sites;
  let result =
    Gen_kill.solve ~direction:Dataflow.Forward ~confluence:Gen_kill.Union cfg
      ~universe
      ~gen:(fun l -> fst gen_kill.(l))
      ~kill:(fun l -> snd gen_kill.(l))
      ~init
  in
  { cfg; regs; sites; result }

let num_sites t = Array.length t.sites
let site t id = t.sites.(id)

let to_sites t set =
  List.map (fun id -> t.sites.(id)) (Bitset.elements set)

let reaching_in t label =
  Option.map (to_sites t) (Gen_kill.before t.result label)

let reaching_out t label =
  Option.map (to_sites t) (Gen_kill.after t.result label)
