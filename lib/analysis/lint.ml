module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module I = Pp_ir.Instr
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program
module Diag = Pp_ir.Diag
module Dfs = Pp_graph.Dfs

(* Blocks with no path from entry.  The MiniC frontend drops statements
   after a [return] during lowering and {!Pp_ir.Validate} rejects programs
   containing such blocks, so this fires on raw [.ppir] input linted before
   validation. *)
let unreachable_blocks (cfg : Cfg.t) =
  let dfs = Dfs.run cfg.Cfg.graph ~root:cfg.Cfg.entry in
  Array.to_list cfg.Cfg.proc.Proc.blocks
  |> List.filter_map (fun (b : Block.t) ->
         if Dfs.reachable dfs b.Block.label then None
         else
           Some
             (Diag.warning
                (Diag.block_loc cfg.Cfg.proc.Proc.name b.Block.label)
                "unreachable code"))

(* Procedures never called, directly or through a function pointer, from
   anything reachable from [main].  Taking a procedure's address with
   [Iconst_sym] counts as a (conservative) call. *)
let unused_procs (prog : Program.t) =
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i (p : Proc.t) -> Hashtbl.replace index p.Proc.name i)
    prog.Program.procs;
  let reached = Array.make (Array.length prog.Program.procs) false in
  let rec visit name =
    match Hashtbl.find_opt index name with
    | None -> ()
    | Some i ->
        if not reached.(i) then begin
          reached.(i) <- true;
          let p = prog.Program.procs.(i) in
          Array.iter
            (fun (b : Block.t) ->
              List.iter
                (fun instr ->
                  match instr with
                  | I.Call { callee; _ } -> visit callee
                  | I.Iconst_sym (_, sym) when Hashtbl.mem index sym ->
                      visit sym
                  | _ -> ())
                b.Block.instrs)
            p.Proc.blocks
        end
  in
  visit prog.Program.main;
  Array.to_list prog.Program.procs
  |> List.filter_map (fun (p : Proc.t) ->
         match Hashtbl.find_opt index p.Proc.name with
         | Some i when not reached.(i) ->
             Some
               (Diag.warning (Diag.proc_loc p.Proc.name)
                  "unused function: never called from main")
         | _ -> None)

(* Branches whose condition the constant-propagation fixpoint proves to be
   a single constant: the other arm is dead.  Reported at the terminator,
   with a companion warning on every block that only that dead arm could
   have reached (distinct from [unreachable_blocks], which needs no value
   reasoning and fires on structurally disconnected code). *)
let constant_branches (cfg : Cfg.t) =
  let name = cfg.Cfg.proc.Proc.name in
  let cp = Constprop.analyze cfg in
  let branches =
    Array.to_list cfg.Cfg.proc.Proc.blocks
    |> List.filter_map (fun (b : Block.t) ->
           match (b.Block.term, Constprop.branch_value cp b.Block.label) with
           | Block.Br _, Some (Constprop.Const c) ->
               Some
                 (Diag.warning
                    (Diag.term_loc name b.Block.label)
                    "branch condition is always %s"
                    (if c <> 0 then "true" else "false"))
           | _ -> None)
  in
  let dfs = Dfs.run cfg.Cfg.graph ~root:cfg.Cfg.entry in
  let dead =
    Array.to_list cfg.Cfg.proc.Proc.blocks
    |> List.filter_map (fun (b : Block.t) ->
           if
             Dfs.reachable dfs b.Block.label
             && not (Constprop.reachable cp b.Block.label)
           then
             Some
               (Diag.warning
                  (Diag.block_loc name b.Block.label)
                  "unreachable code (constant branch)")
           else None)
  in
  branches @ dead

let lint_proc (p : Proc.t) =
  let cfg = Cfg.of_proc p in
  let unreachable = unreachable_blocks cfg in
  let live = Liveness.compute cfg in
  let uninit = Uninit.compute cfg in
  unreachable @ constant_branches cfg @ Uninit.warnings uninit
  @ Liveness.dead_stores live @ Liveness.unused_params live

let run (prog : Program.t) =
  let per_proc =
    Array.to_list prog.Program.procs |> List.concat_map lint_proc
  in
  per_proc @ unused_procs prog
