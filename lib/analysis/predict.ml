module Config = Pp_machine.Config
module Model = Pp_machine.Model
module Ball_larus = Pp_core.Ball_larus
module Digraph = Pp_graph.Digraph
module Loops = Pp_graph.Loops
module Cfg = Pp_ir.Cfg
module Proc = Pp_ir.Proc
module Block = Pp_ir.Block
module Program = Pp_ir.Program
module Layout = Pp_ir.Layout
module I = Pp_ir.Instr
module C = Cachepred

type itv = { lo : int; hi : int option }

type metrics = { cycles : itv; dmiss : itv; imiss : itv; stalls : itv }

type tail = {
  t_cycles : int option;
  t_dmiss : int option;
  t_imiss : int option;
  t_stalls : int option;
}

type exec_bounds = {
  per_exec : metrics;
  dmiss_once : int;
  imiss_once : int;
  cycles_once : int;
  header : Block.label option;
  to_exit : bool;
}

let ( +? ) a b = match (a, b) with Some x, Some y -> Some (x + y) | _ -> None
let scale k = function Some x -> Some (k * x) | None -> None
let max_opt a b = match (a, b) with Some x, Some y -> Some (max x y) | _ -> None

(* ------------------------------------------------------------------ *)
(* Micro events.

   Each instrumented block is compiled once into an ordered array of
   abstract machine events mirroring exactly what Interp/Machine charge
   when the block executes: one icache probe per instruction fetch, one
   dcache probe per load/store (profiling stubs included, with the exact
   footprints of Pp_vm.Runtime), instruction-count contributions, and
   stall sites.  [Mcall] marks a call instruction: the window being
   predicted stops accruing there (the rest of the block belongs to the
   callee's To_exit window) and both caches are havocked.               *)

type micro =
  | Mi of C.access  (** icache probe; [Read] = certain, [Read_maybe] = not *)
  | Mcount of int * int option  (** instructions fetched here: lo, hi *)
  | Md of bool * bool * C.target  (** write?, certain?, dcache target *)
  | Mdslack of int option
      (** possible extra loads of unknown prof lines (unbounded CCT walk):
          adds to the read-miss upper bound and havocs the dcache state *)
  | Mislack of int option
      (** extra possible icache misses when a stub's wrapped fetch lines
          alias in one set (never under the default geometry) *)
  | Mfp of int  (** certain FP stall sites *)
  | Mbr  (** branch-predictor site (Br terminator) *)
  | Mcall of string option  (** callee name; [None] = indirect *)

let d_access_of = function
  | Md (write, certain, tgt) ->
      Some
        (if write then if certain then C.Write tgt else C.Read_maybe tgt
         else if certain then C.Read tgt
         else C.Read_maybe tgt)
  | Mdslack _ | Mcall _ -> Some C.Havoc
  | Mi _ | Mcount _ | Mislack _ | Mfp _ | Mbr -> None

let i_access_of = function
  | Mi a -> Some a
  | Mcall _ -> Some C.Havoc
  | Md _ | Mdslack _ | Mcount _ | Mislack _ | Mfp _ | Mbr -> None

(* ------------------------------------------------------------------ *)
(* Per-procedure context *)

type pctx = {
  pname : string;
  orig : Proc.t;
  inst : Proc.t;
  n_orig : int;
  ocfg : Cfg.t;  (* original CFG: the numbering's coordinate system *)
  icfg : Cfg.t;  (* instrumented CFG: what actually executes *)
  bl : Ball_larus.t option;
  feas : Feasibility.t option;
  micros : micro array array;  (* by instrumented label *)
  d_events : C.access array array;
  i_events : C.access array array;
  dsol : C.solution;
  isol : C.solution;
  loops : Loops.t;  (* over the instrumented graph *)
  persist_memo : (bool * int * int, bool) Hashtbl.t;
      (* (icache?, loop index, line) -> cannot be evicted from the body *)
  cache : (int, exec_bounds) Hashtbl.t;
}

type t = {
  config : Config.t;
  layout : Layout.t;  (* of the instrumented program *)
  instrumented : Program.t;
  ctxs : (string, pctx) Hashtbl.t;
  cold_main : string option;  (* main's name when it provably runs on a
                                 fresh machine and is never re-entered *)
  mutable tails : (string, tail) Hashtbl.t option;
}

let config t = t.config

(* ------------------------------------------------------------------ *)
(* Micro extraction *)

(* Candidate cache lines of a data reference, through Absint's view of
   the address register.  Width is one word: Machine.load/store probe
   exactly the line containing the effective address. *)
let target_of t env ~base ~off =
  let geom = t.config.Config.dcache in
  let v = Absint.address env ~base ~off in
  let bounded lo hi =
    if lo = min_int || hi = max_int || hi < lo then C.Top
    else if hi - lo > 64 * geom.Config.line_bytes then C.Top
    else
      match Model.lines_of_range geom ~addr:lo ~bytes:(hi - lo + 1) with
      | [ l ] -> C.Line l
      | ls when List.length ls <= 64 -> C.Lines ls
      | _ -> C.Top
  in
  match v.Absint.base with
  | Absint.Bany -> C.Top
  | Absint.Bframe -> (
      match Interval.is_const v.Absint.itv with
      | Some o -> C.Frame o
      | None -> C.Top_frame)
  | Absint.Bnum ->
      if Interval.is_top v.Absint.itv then C.Top
      else bounded (Interval.lo v.Absint.itv) (Interval.hi v.Absint.itv)
  | Absint.Bglobal g -> (
      match Program.find_global t.instrumented g with
      | None -> C.Top
      | Some { Program.size_words; _ } ->
          let base_addr = Layout.global_addr t.layout g in
          let glo = base_addr and ghi = base_addr + (size_words * 8) - 1 in
          let lo = Interval.lo v.Absint.itv
          and hi = Interval.hi v.Absint.itv in
          (* Clamp to the global's extent: an out-of-bounds access faults,
             and faulting windows are never measured. *)
          let lo = if lo = min_int then glo else max glo (base_addr + lo) in
          let hi = if hi = max_int then ghi else min ghi (base_addr + hi) in
          if hi < lo then C.Top else bounded lo hi)

(* The linkage slots the CCT stubs touch, as offsets from the probe frame
   (fp + linkage_bytes): the saved-gCSP word at fp and the two PIC
   snapshot words at fp+8 / fp+16 (see Pp_vm.Runtime). *)
let linkage_bytes = 32
let fr_gcsp = -linkage_bytes
let fr_pic0 = -linkage_bytes + 8
let fr_pic1 = -linkage_bytes + 16

(* Mirrors Runtime.record_words. *)
let record_words nsites = 2 + 3 + max 1 nsites

(* Fetch micros of a stub's charge_fetches loop: [count] charges wrap
   through the op's [slots] 4-byte code slots starting at [op_addr]. *)
let stub_fetches ~geom_i ~op_addr ~slots emit ~certain ~count_lo ~count_hi =
  let line_of_slot i = Model.line_of geom_i (op_addr + (i mod slots * 4)) in
  let emit_lines n acc =
    let seen = ref [] in
    for i = 0 to n - 1 do
      let l = line_of_slot i in
      if not (List.mem l !seen) then begin
        seen := l :: !seen;
        emit (Mi (acc l))
      end
    done;
    List.rev !seen
  in
  if certain then begin
    ignore (emit_lines count_lo (fun l -> C.Read (C.Line l)));
    emit (Mcount (count_lo, Some count_lo))
  end
  else begin
    let lines = emit_lines slots (fun l -> C.Read_maybe (C.Line l)) in
    emit (Mcount (0, count_hi));
    (* One [Read_maybe] per distinct line bounds the possible misses only
       when the stub's lines occupy distinct sets (always true when the
       cache has at least as many sets as the stub spans lines). *)
    let alias =
      List.exists
        (fun l ->
          List.exists
            (fun l' -> l <> l' && Model.same_set geom_i l l')
            lines)
        lines
    in
    if alias then emit (Mislack count_hi)
  end

let prof_micros t ~op_addr ~wbound emit op =
  let geom_i = t.config.Config.icache in
  let slots = I.slots (I.Prof op) in
  let fixed count =
    stub_fetches ~geom_i ~op_addr ~slots emit ~certain:true ~count_lo:count
      ~count_hi:(Some count)
  in
  let rd tgt = emit (Md (false, true, tgt)) in
  let wr tgt = emit (Md (true, true, tgt)) in
  let accumulate () =
    (* Runtime.accumulate_deltas: two read-modify-writes in the record. *)
    rd C.Top_prof;
    wr C.Top_prof;
    rd C.Top_prof;
    wr C.Top_prof
  in
  match op with
  | I.Cct_call _ -> fixed 2
  | I.Cct_enter { nsites; _ } ->
      (* Load of the parent's callee slot, 8 base + 3-per-ancestor walk
         charges, the walked headers, conditional record initialisation,
         then the three unconditional stores. *)
      rd C.Top_prof;
      fixed 8;
      stub_fetches ~geom_i ~op_addr ~slots emit ~certain:false ~count_lo:0
        ~count_hi:(scale 3 wbound);
      (match wbound with
      | Some w ->
          for _ = 1 to w do
            emit (Md (false, false, C.Top_prof))
          done
      | None -> emit (Mdslack None));
      for _ = 1 to record_words nsites do
        emit (Md (true, false, C.Top_prof))
      done;
      wr C.Top_prof;
      wr C.Top_prof;
      wr (C.Frame fr_gcsp)
  | I.Cct_exit ->
      fixed 3;
      rd (C.Frame fr_gcsp)
  | I.Cct_metric_enter ->
      fixed 4;
      wr (C.Frame fr_pic0);
      wr (C.Frame fr_pic1)
  | I.Cct_metric_exit ->
      fixed 10;
      rd (C.Frame fr_pic0);
      rd (C.Frame fr_pic1);
      accumulate ()
  | I.Cct_metric_backedge ->
      fixed 12;
      rd (C.Frame fr_pic0);
      rd (C.Frame fr_pic1);
      accumulate ();
      wr (C.Frame fr_pic0);
      wr (C.Frame fr_pic1)
  | I.Path_commit_hash _ ->
      fixed 12;
      rd C.Top_prof;
      wr C.Top_prof
  | I.Path_commit_hash_hw _ ->
      fixed 18;
      rd C.Top_prof;
      wr C.Top_prof;
      rd C.Top_prof;
      wr C.Top_prof
  | I.Path_commit_cct _ ->
      fixed 10;
      rd C.Top_prof;
      wr C.Top_prof

let instr_micros t ~wbound ~env ~addr emit instr =
  let geom_i = t.config.Config.icache in
  (* The interpreter fetch of the instruction itself. *)
  emit (Mi (C.Read (C.Line (Model.line_of geom_i addr))));
  emit (Mcount (1, Some 1));
  let tgt base off =
    match env with
    | Some env -> target_of t env ~base ~off
    | None -> C.Top
  in
  match instr with
  | I.Load (_, rb, off) -> emit (Md (false, true, tgt rb off))
  | I.Fload (_, rb, off) -> emit (Md (false, true, tgt rb off))
  | I.Store (_, rb, off) -> emit (Md (true, true, tgt rb off))
  | I.Fstore (_, rb, off) ->
      emit (Mfp 1);
      emit (Md (true, true, tgt rb off))
  | I.Fmov _ | I.Ftoi _ | I.Print_float _ -> emit (Mfp 1)
  | I.Fbinop _ -> emit (Mfp 1)
  | I.Fcmp _ -> emit (Mfp 2)
  | I.Call { callee; fargs; _ } ->
      emit (Mfp (List.length fargs));
      emit (Mcall (Some callee))
  | I.Callind { fargs; _ } ->
      emit (Mfp (List.length fargs));
      emit (Mcall None)
  | I.Prof op -> prof_micros t ~op_addr:addr ~wbound emit op
  | I.Iconst _ | I.Iconst_sym _ | I.Fconst _ | I.Imov _ | I.Ibinop _
  | I.Ibinop_imm _ | I.Icmp _ | I.Icmp_imm _ | I.Itof _ | I.Hwread _
  | I.Hwzero | I.Hwwrite _ | I.Frameaddr _ | I.Print_int _ ->
      ()

let block_micros t ~wbound ~ab (inst : Proc.t) (b : Block.t) =
  let buf = ref [] in
  let emit m = buf := m :: !buf in
  let addr_of index =
    Layout.instr_addr t.layout ~proc:inst.Proc.name ~label:b.Block.label ~index
  in
  let replayed =
    Absint.iter_block ab b.Block.label (fun ~pos env instr ->
        instr_micros t ~wbound ~env:(Some env) ~addr:(addr_of pos) emit instr)
  in
  (match replayed with
  | Some _ -> ()
  | None ->
      (* Unreached by the abstract interpreter (it proved the block dead,
         or gave up): extract without address information. *)
      List.iteri
        (fun pos instr ->
          instr_micros t ~wbound ~env:None ~addr:(addr_of pos) emit instr)
        b.Block.instrs);
  let taddr = addr_of (List.length b.Block.instrs) in
  emit (Mi (C.Read (C.Line (Model.line_of t.config.Config.icache taddr))));
  emit (Mcount (1, Some 1));
  (match b.Block.term with
  | Block.Br _ -> emit Mbr
  | Block.Ret (Block.Ret_float _) -> emit (Mfp 1)
  | Block.Jmp _ | Block.Ret _ -> ());
  Array.of_list (List.rev !buf)

(* ------------------------------------------------------------------ *)
(* The walk: fold micros over the two abstract cache states, counting
   certified interval contributions for one window execution. *)

type acc = {
  mutable ni_lo : int;
  mutable ni_hi : int option;  (* instructions *)
  mutable rm_lo : int;
  mutable rm_hi : int option;  (* dcache read misses *)
  mutable wm_lo : int;
  mutable wm_hi : int option;  (* dcache write misses *)
  mutable im_lo : int;
  mutable im_hi : int option;  (* icache misses *)
  mutable st_hi : int option;  (* stall cycles; the lower bound is 0 *)
  mutable rm_once : int;
  mutable im_once : int;
}

let acc_create () =
  {
    ni_lo = 0;
    ni_hi = Some 0;
    rm_lo = 0;
    rm_hi = Some 0;
    wm_lo = 0;
    wm_hi = Some 0;
    im_lo = 0;
    im_hi = Some 0;
    st_hi = Some 0;
    rm_once = 0;
    im_once = 0;
  }

type walk_state = { mutable d : C.state; mutable i : C.state }

(* [persist] answers "is a miss of this line chargeable once per loop
   entry instead of once per execution?" — set only while walking the
   loop-body blocks of an After_backedge path. *)
let step_micro t acc ws ~live ~persist m =
  let gd = t.config.Config.dcache and gi = t.config.Config.icache in
  let store_bound = Model.store_stall_bound t.config in
  let fp_bound = Model.fp_stall_bound t.config in
  (match m with
  | Mi a ->
      if live then begin
        let c = C.classify gi ws.i a in
        match a with
        | C.Read tgt -> (
            match c with
            | C.Hit -> ()
            | C.Miss ->
                acc.im_lo <- acc.im_lo + 1;
                acc.im_hi <- acc.im_hi +? Some 1
            | C.Unknown ->
                if persist ~icache:true tgt then
                  acc.im_once <- acc.im_once + 1
                else acc.im_hi <- acc.im_hi +? Some 1)
        | C.Read_maybe _ ->
            if c <> C.Hit then acc.im_hi <- acc.im_hi +? Some 1
        | C.Write _ | C.Havoc -> ()
      end
  | Mcount (lo, hi) ->
      if live then begin
        acc.ni_lo <- acc.ni_lo + lo;
        acc.ni_hi <- acc.ni_hi +? hi
      end
  | Md (write, certain, tgt) ->
      if live then begin
        let c =
          C.classify gd ws.d (if write then C.Write tgt else C.Read tgt)
        in
        if write then begin
          acc.st_hi <- acc.st_hi +? Some store_bound;
          (match (certain, c) with
          | true, C.Miss ->
              acc.wm_lo <- acc.wm_lo + 1;
              acc.wm_hi <- acc.wm_hi +? Some 1
          | true, C.Unknown | false, (C.Miss | C.Unknown) ->
              acc.wm_hi <- acc.wm_hi +? Some 1
          | _, C.Hit -> ())
        end
        else
          match (certain, c) with
          | true, C.Miss ->
              acc.rm_lo <- acc.rm_lo + 1;
              acc.rm_hi <- acc.rm_hi +? Some 1
          | true, C.Unknown ->
              if persist ~icache:false tgt then
                acc.rm_once <- acc.rm_once + 1
              else acc.rm_hi <- acc.rm_hi +? Some 1
          | false, (C.Miss | C.Unknown) -> acc.rm_hi <- acc.rm_hi +? Some 1
          | _, C.Hit -> ()
      end
  | Mdslack n -> if live then acc.rm_hi <- acc.rm_hi +? n
  | Mislack n -> if live then acc.im_hi <- acc.im_hi +? n
  | Mfp n -> if live then acc.st_hi <- acc.st_hi +? Some (n * fp_bound)
  | Mbr ->
      if live then
        acc.st_hi <- acc.st_hi +? Some (Model.mispredict_bound t.config)
  | Mcall _ -> ());
  (match d_access_of m with Some a -> ws.d <- C.step gd ws.d a | None -> ());
  match i_access_of m with Some a -> ws.i <- C.step gi ws.i a | None -> ()

let no_persist ~icache:_ _ = false

(* Walk whole blocks.  Accrual stops at a call (the block's remaining
   events belong to the callee's To_exit window) and resumes at the next
   block — the states keep stepping throughout so the caches stay
   sound. *)
let walk_blocks t ctx acc ws ~persist labels =
  List.iter
    (fun l ->
      let live = ref true in
      Array.iter
        (fun m ->
          step_micro t acc ws ~live:!live ~persist:(persist l) m;
          match m with Mcall _ -> live := false | _ -> ())
        ctx.micros.(l))
    labels

(* ------------------------------------------------------------------ *)
(* Instrumented-CFG navigation *)

let same_role a b =
  match (a, b) with
  | Cfg.Jump, Cfg.Jump
  | Cfg.Branch_true, Cfg.Branch_true
  | Cfg.Branch_false, Cfg.Branch_false ->
      true
  | _ -> false

(* Follow fresh (label >= n_orig) single-successor blocks until an
   original label; returns the fresh chain in execution order. *)
let follow_fresh ctx start =
  let rec go acc l fuel =
    if l < ctx.n_orig || fuel = 0 then List.rev acc
    else
      match (Proc.block ctx.inst l).Block.term with
      | Block.Jmp next -> go (l :: acc) next (fuel - 1)
      | Block.Br _ | Block.Ret _ -> List.rev (l :: acc)
  in
  go [] start 16

(* Fresh blocks the instrumenter placed on original edge [e] (empty when
   the edge survived intact or its code was merged into an endpoint). *)
let split_chain ctx (e : Digraph.edge) =
  let role = Cfg.role ctx.ocfg e in
  let arm =
    List.find_opt
      (fun ie -> same_role (Cfg.role ctx.icfg ie) role)
      (Digraph.out_edges ctx.icfg.Cfg.graph e.Digraph.src)
  in
  match arm with
  | Some ie when ie.Digraph.dst >= ctx.n_orig -> follow_fresh ctx ie.Digraph.dst
  | Some _ | None -> []

(* The abstract cache states in force when an After_backedge window opens:
   the out-state of the last block executed before the header's probe. *)
let backedge_states ctx (e : Digraph.edge) =
  let last =
    match List.rev (split_chain ctx e) with
    | l :: _ -> l
    | [] -> e.Digraph.src
  in
  (ctx.dsol.C.block_out.(last), ctx.isol.C.block_out.(last), last)

(* ------------------------------------------------------------------ *)
(* Persistence *)

let loop_of_header ctx header =
  let ls = Loops.loops ctx.loops in
  let rec find i =
    if i >= Array.length ls then None
    else if ls.(i).Loops.header = header then Some i
    else find (i + 1)
  in
  find 0

let body_blocks ctx li =
  List.filter
    (fun v -> v < Proc.num_blocks ctx.inst)
    (Loops.loops ctx.loops).(li).Loops.body

let persistent_in ctx ~icache geom li line =
  match Hashtbl.find_opt ctx.persist_memo (icache, li, line) with
  | Some r -> r
  | None ->
      let events = if icache then ctx.i_events else ctx.d_events in
      let body_events = List.map (fun v -> events.(v)) (body_blocks ctx li) in
      let r = C.persistent geom ~body_events (C.Line line) in
      Hashtbl.add ctx.persist_memo (icache, li, line) r;
      r

(* ------------------------------------------------------------------ *)
(* Context construction *)

let has_numbering ctx = ctx.bl <> None

let build_pctx t ~wbound (orig : Proc.t) (inst : Proc.t) =
  let ocfg = Cfg.of_proc orig in
  let icfg = Cfg.of_proc inst in
  let bl = match Ball_larus.build ocfg with
    | bl -> Some bl
    | exception Ball_larus.Unsupported _ -> None
  in
  let feas = Option.map (fun bl -> Feasibility.analyze ocfg bl) bl in
  let ab = Absint.analyze icfg in
  let micros =
    Array.map (fun b -> block_micros t ~wbound ~ab inst b) inst.Proc.blocks
  in
  let pick f = Array.map (fun ms -> Array.of_list (List.filter_map f (Array.to_list ms))) micros in
  let d_events = pick d_access_of and i_events = pick i_access_of in
  let nblocks = Proc.num_blocks inst in
  let succs b = Block.successors (Proc.block inst b) in
  let cold = t.cold_main = Some orig.Proc.name in
  let dsol =
    C.solve t.config.Config.dcache ~nblocks ~entry:inst.Proc.entry ~succs
      ~events:(fun b -> d_events.(b)) ~cold
  in
  let isol =
    C.solve t.config.Config.icache ~nblocks ~entry:inst.Proc.entry ~succs
      ~events:(fun b -> i_events.(b)) ~cold
  in
  let loops = Loops.analyze icfg.Cfg.graph ~root:icfg.Cfg.entry in
  {
    pname = orig.Proc.name;
    orig;
    inst;
    n_orig = Proc.num_blocks orig;
    ocfg;
    icfg;
    bl;
    feas;
    micros;
    d_events;
    i_events;
    dsol;
    isol;
    loops;
    persist_memo = Hashtbl.create 32;
    cache = Hashtbl.create 64;
  }

let create ?(config = Config.default) ~original ~instrumented () =
  let config = Config.validate config in
  let layout = Layout.build instrumented in
  (* Worst-case CCT ancestor walk of Cct_enter: bounded by the deepest
     possible context, finite only when the call graph is acyclic and has
     no indirect calls. *)
  let has_callind = ref false and calls = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      Proc.iter_instrs
        (fun _ instr ->
          match instr with
          | I.Callind _ -> has_callind := true
          | I.Call { callee; _ } ->
              Hashtbl.replace calls (p.Proc.name, callee) ()
          | _ -> ())
        p)
    original.Program.procs;
  let nprocs = Array.length original.Program.procs in
  let acyclic =
    (* Kahn-style: repeatedly remove procedures with no remaining callers
       among the survivors. *)
    let names = Array.to_list original.Program.procs
                |> List.map (fun p -> p.Proc.name) in
    let alive = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace alive n ()) names;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun n ->
          if Hashtbl.mem alive n then
            let has_live_caller =
              Hashtbl.fold
                (fun (c, callee) () found ->
                  found || (callee = n && Hashtbl.mem alive c && c <> n))
                calls false
            in
            let self = Hashtbl.mem calls (n, n) in
            if (not has_live_caller) && not self then begin
              Hashtbl.remove alive n;
              changed := true
            end)
        names
    done;
    Hashtbl.length alive = 0
  in
  let wbound =
    if !has_callind || not acyclic then None else Some (nprocs + 1)
  in
  let main_called =
    !has_callind
    || Hashtbl.fold
         (fun (_, callee) () found ->
           found || callee = original.Program.main)
         calls false
  in
  let cold_main = if main_called then None else Some original.Program.main in
  let t =
    {
      config;
      layout;
      instrumented;
      ctxs = Hashtbl.create 16;
      cold_main;
      tails = None;
    }
  in
  Array.iter
    (fun (orig : Proc.t) ->
      match Program.find_proc instrumented orig.Proc.name with
      | None -> ()
      | Some inst ->
          Hashtbl.replace t.ctxs orig.Proc.name (build_pctx t ~wbound orig inst))
    original.Program.procs;
  t

let ctx_exn t proc =
  match Hashtbl.find_opt t.ctxs proc with
  | Some ctx -> ctx
  | None -> invalid_arg (Printf.sprintf "Predict: unknown procedure %s" proc)

let numbering t proc = (ctx_exn t proc).bl
let feasibility t proc = (ctx_exn t proc).feas

let procs t =
  Hashtbl.fold (fun n ctx acc -> if has_numbering ctx then n :: acc else acc)
    t.ctxs []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Tails: the caller-side segment between a procedure's return and the
   next block probe, charged to the returning procedure's last window. *)

type segment = {
  seg_callee : string option;  (* which callee's tail this feeds *)
  seg_cost : tail;
  seg_chain : string option;  (* segment runs off a Ret: add this proc's tail *)
}

let segment_cost t ctx ~block ~start ~stop =
  let acc = acc_create () in
  let ws = { d = C.entry ~cold:false; i = C.entry ~cold:false } in
  for k = start to stop do
    step_micro t acc ws ~live:true ~persist:no_persist ctx.micros.(block).(k)
  done;
  {
    t_cycles =
      acc.ni_hi
      +? scale t.config.Config.icache_miss_penalty acc.im_hi
      +? scale t.config.Config.dcache_miss_penalty acc.rm_hi
      +? acc.st_hi;
    t_dmiss = acc.rm_hi +? acc.wm_hi;
    t_imiss = acc.im_hi;
    t_stalls = acc.st_hi;
  }

let segments_of_ctx t ctx =
  let segs = ref [] in
  Array.iteri
    (fun label ms ->
      let n = Array.length ms in
      let term = (Proc.block ctx.inst label).Block.term in
      let rec scan i =
        if i < n then
          match ms.(i) with
          | Mcall callee ->
              (* The segment runs to the next call's [Mcall] (the next
                 callee's probe fires right after its fetch/arg micros) or
                 through the terminator. *)
              let rec find_end j =
                if j >= n then (n - 1, None)
                else
                  match ms.(j) with
                  | Mcall _ -> (j, Some `Call)
                  | _ -> find_end (j + 1)
              in
              let stop, ended = find_end (i + 1) in
              let chain =
                match (ended, term) with
                | None, Block.Ret _ -> Some ctx.pname
                | _ -> None
              in
              segs :=
                {
                  seg_callee = callee;
                  seg_cost = segment_cost t ctx ~block:label ~start:(i + 1) ~stop;
                  seg_chain = chain;
                }
                :: !segs;
              scan (i + 1)
          | _ -> scan (i + 1)
      in
      scan 0)
    ctx.micros;
  !segs

let tail_zero = { t_cycles = Some 0; t_dmiss = Some 0; t_imiss = Some 0; t_stalls = Some 0 }
let tail_top = { t_cycles = None; t_dmiss = None; t_imiss = None; t_stalls = None }

let tail_add a b =
  {
    t_cycles = a.t_cycles +? b.t_cycles;
    t_dmiss = a.t_dmiss +? b.t_dmiss;
    t_imiss = a.t_imiss +? b.t_imiss;
    t_stalls = a.t_stalls +? b.t_stalls;
  }

let tail_max a b =
  {
    t_cycles = max_opt a.t_cycles b.t_cycles;
    t_dmiss = max_opt a.t_dmiss b.t_dmiss;
    t_imiss = max_opt a.t_imiss b.t_imiss;
    t_stalls = max_opt a.t_stalls b.t_stalls;
  }

let tail_equal a b = a = b

let compute_tails t =
  let all_segs =
    Hashtbl.fold (fun _ ctx acc -> segments_of_ctx t ctx @ acc) t.ctxs []
  in
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) t.ctxs [] in
  let tails = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace tails n tail_zero) names;
  let round () =
    List.fold_left
      (fun changed n ->
        let cur = Hashtbl.find tails n in
        let next =
          List.fold_left
            (fun best s ->
              let applies =
                match s.seg_callee with Some c -> c = n | None -> true
              in
              if not applies then best
              else
                let chained =
                  match s.seg_chain with
                  | None -> s.seg_cost
                  | Some q ->
                      tail_add s.seg_cost
                        (Option.value ~default:tail_top
                           (Hashtbl.find_opt tails q))
                in
                tail_max best chained)
            cur all_segs
        in
        if tail_equal next cur then changed
        else begin
          Hashtbl.replace tails n next;
          true
        end)
      false names
  in
  let rec iterate k =
    if round () then
      if k = 0 then
        (* Still growing: a recursive return chain makes the caller-side
           continuation unbounded. *)
        List.iter (fun n -> Hashtbl.replace tails n tail_top) names
      else iterate (k - 1)
  in
  iterate (List.length names + 2);
  tails

let tail_bound t proc =
  let tails =
    match t.tails with
    | Some tb -> tb
    | None ->
        let tb = compute_tails t in
        t.tails <- Some tb;
        tb
  in
  match Hashtbl.find_opt tails proc with
  | Some tl -> tl
  | None -> invalid_arg (Printf.sprintf "Predict: unknown procedure %s" proc)

(* ------------------------------------------------------------------ *)
(* Per-path prediction *)

let path_labels ctx (trav : Ball_larus.traversal) =
  let p = trav.Ball_larus.path in
  let blocks = p.Ball_larus.blocks in
  let inner_edges =
    List.filter
      (fun (e : Digraph.edge) ->
        e.Digraph.src < ctx.n_orig && e.Digraph.dst < ctx.n_orig)
      trav.Ball_larus.real_edges
  in
  let prefix =
    match p.Ball_larus.source with
    | Ball_larus.From_entry -> follow_fresh ctx ctx.inst.Proc.entry
    | Ball_larus.After_backedge _ -> []
  in
  let rec weave acc blocks edges =
    match (blocks, edges) with
    | [], _ -> List.rev acc
    | [ b ], [] -> List.rev (b :: acc)
    | b :: (next :: _ as rest), e :: es
      when e.Digraph.src = b && e.Digraph.dst = next ->
        weave (List.rev_append (split_chain ctx e) (b :: acc)) rest es
    | b :: rest, es ->
        (* Missing or misaligned edge information: keep the blocks, lose
           only split precision. *)
        weave (b :: acc) rest es
  in
  let main = weave [] blocks inner_edges in
  let suffix =
    match p.Ball_larus.sink with
    | Ball_larus.To_exit -> []
    | Ball_larus.Into_backedge e -> split_chain ctx e
  in
  prefix @ main @ suffix

let predict t ~proc ~sum =
  let ctx = ctx_exn t proc in
  match Hashtbl.find_opt ctx.cache sum with
  | Some b -> b
  | None ->
      let bl =
        match ctx.bl with
        | Some bl -> bl
        | None ->
            invalid_arg
              (Printf.sprintf "Predict: %s has no path numbering" proc)
      in
      let trav = Ball_larus.traverse bl sum in
      let path = trav.Ball_larus.path in
      let labels = path_labels ctx trav in
      let cold = t.cold_main = Some proc in
      let dstate, istate, header, loop =
        match path.Ball_larus.source with
        | Ball_larus.From_entry ->
            (C.entry ~cold, C.entry ~cold, None, None)
        | Ball_larus.After_backedge e ->
            let d, i, _ = backedge_states ctx e in
            let h = e.Digraph.dst in
            (d, i, Some h, loop_of_header ctx h)
      in
      let in_body =
        match loop with
        | None -> fun _ -> false
        | Some li -> fun l -> Loops.in_loop ctx.loops li l
      in
      let persist l ~icache tgt =
        match (loop, tgt) with
        | Some li, C.Line line when in_body l ->
            let geom =
              if icache then t.config.Config.icache
              else t.config.Config.dcache
            in
            persistent_in ctx ~icache geom li line
        | _ -> false
      in
      let acc = acc_create () in
      let ws = { d = dstate; i = istate } in
      walk_blocks t ctx acc ws ~persist labels;
      let mk lo hi = { lo; hi } in
      let dc_pen = t.config.Config.dcache_miss_penalty in
      let ic_pen = t.config.Config.icache_miss_penalty in
      let cycles =
        mk
          (acc.ni_lo + (ic_pen * acc.im_lo) + (dc_pen * acc.rm_lo))
          (acc.ni_hi +? scale ic_pen acc.im_hi +? scale dc_pen acc.rm_hi
          +? acc.st_hi)
      in
      let b =
        {
          per_exec =
            {
              cycles;
              dmiss = mk (acc.rm_lo + acc.wm_lo) (acc.rm_hi +? acc.wm_hi);
              imiss = mk acc.im_lo acc.im_hi;
              stalls = mk 0 acc.st_hi;
            };
          dmiss_once = acc.rm_once;
          imiss_once = acc.im_once;
          cycles_once = (dc_pen * acc.rm_once) + (ic_pen * acc.im_once);
          header;
          to_exit = path.Ball_larus.sink = Ball_larus.To_exit;
        }
      in
      Hashtbl.replace ctx.cache sum b;
      b
