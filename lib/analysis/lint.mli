(** Whole-program lint built on the dataflow framework.

    Four checks, all reported as warnings:
    - unreachable blocks (raw [.ppir] input; the MiniC frontend drops
      unreachable statements during lowering);
    - uses of possibly-uninitialised registers ({!Uninit});
    - dead stores — side-effect-free instructions whose results are never
      read ({!Liveness.dead_stores});
    - unused functions — procedures unreachable in the call graph from
      [main], treating an [Iconst_sym] of a procedure name as an
      address-taken (hence possible indirect) call. *)

val lint_proc : Pp_ir.Proc.t -> Pp_ir.Diag.t list
val run : Pp_ir.Program.t -> Pp_ir.Diag.t list
