(** Congruence (stride) domain: values of the form [r mod m].

    Tracks alignment facts the intervals cannot — e.g. a table offset
    computed as [key * 24] is congruent to [0 mod 24] and therefore
    8-byte aligned even when [key] is unknown.  Modular arithmetic is not
    wrap-safe for arbitrary moduli, so the interesting transfer functions
    fire only under the [no_wrap] promise computed by {!Interval}; without
    it they return {!top}.  Two known constants always fold exactly (the
    VM's own wrapping arithmetic).  An implementation of {!Domain.S}. *)

type t

val top : t
val const : int -> t
val is_top : t -> bool
val is_const : t -> int option
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t

(** The modulus of a join divides both inputs' moduli, so joining doubles
    as a terminating widening. *)
val widen : t -> t -> t

val binop : no_wrap:bool -> Pp_ir.Instr.ibinop -> t -> t -> t
val cmp : Pp_ir.Instr.cmp -> t -> t -> t

(** [divides k t]: every concrete value of [t] is divisible by [k]. *)
val divides : int -> t -> bool

val pp : Format.formatter -> t -> unit
