(** Forward reaching-definitions analysis.

    A definition site is one register write: an instruction operand
    position, or the implicit definition of a parameter at procedure entry
    ([index = -1]).  Registers use the dense encoding of the other
    analyses (integer [r] → [r], float [f] → [niregs + f]). *)

type site = {
  block : Pp_ir.Block.label;
  index : int;  (** instruction index; -1 for a parameter *)
  reg : int;
}

type t

val compute : Pp_ir.Cfg.t -> t
val num_sites : t -> int
val site : t -> int -> site

(** Definitions that may reach the start / end of a block ([None] when
    unreachable). *)
val reaching_in : t -> Pp_ir.Block.label -> site list option

val reaching_out : t -> Pp_ir.Block.label -> site list option
