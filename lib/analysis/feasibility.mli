(** Static path feasibility for Ball–Larus numberings.

    Combines {!Constprop}'s never-executable edges with a per-path symbolic
    replay that detects branch correlation: a path whose straight-line code
    forces a later branch condition to a constant cannot take the other
    arm.  Both checks over-approximate concrete execution, so a path judged
    infeasible can never be observed dynamically — pruning it from the
    numbering is sound (the soundness property test in
    [test/test_feasibility.ml] exercises exactly this claim). *)

type verdict =
  | Feasible
  | Infeasible_edge of Pp_graph.Digraph.edge
      (** the path crosses a CFG edge constant propagation proved
          never-executable *)
  | Infeasible_branch of { block : Pp_ir.Block.label; value : int }
      (** replay showed this block's branch condition is the constant
          [value], contradicting the arm the path takes *)

type t

(** [analyze cfg bl] runs constant propagation once and, when
    [Ball_larus.num_paths bl <= max_enumerate] (default 4096), classifies
    every path sum up front; beyond that bound, per-sum queries are
    answered lazily and no pruning is offered. *)
val analyze : ?max_enumerate:int -> Pp_ir.Cfg.t -> Pp_core.Ball_larus.t -> t

(** Whether the full path table was enumerated (a prerequisite for
    {!prune}). *)
val enumerated : t -> bool

(** The underlying constant-propagation fixpoint. *)
val constprop : t -> Constprop.t

val check : t -> int -> verdict
val feasible : t -> int -> bool

(** Count of feasible sums; equals [num_paths] when not enumerated. *)
val num_feasible : t -> int

(** Ascending; empty when not enumerated. *)
val infeasible_sums : t -> int list

(** CFG edges proven never-executable, in edge-id order. *)
val infeasible_edges : t -> Pp_graph.Digraph.edge list

(** @raise Invalid_argument when not {!enumerated}. *)
val prune : t -> Pp_core.Ball_larus.pruned

(** One-shot convenience with the signature {!Pp_instrument.Instrument.run}
    expects for its [?pruner] argument; [None] when the path table is too
    large to enumerate. *)
val pruner :
  ?max_enumerate:int ->
  Pp_ir.Cfg.t ->
  Pp_core.Ball_larus.t ->
  Pp_core.Ball_larus.pruned option
