(* A dense numbering over both register classes of a procedure: integer
   register [r] maps to [r], float register [f] to [niregs + f].  The
   bitvector analyses (liveness, uninit) share this encoding. *)

module I = Pp_ir.Instr
module Block = Pp_ir.Block

type t = { niregs : int; nfregs : int }

let of_proc (p : Pp_ir.Proc.t) =
  { niregs = p.Pp_ir.Proc.niregs; nfregs = p.Pp_ir.Proc.nfregs }

let universe t = t.niregs + t.nfregs
let ireg _t r = r
let freg t f = t.niregs + f

let name t id =
  if id < t.niregs then Printf.sprintf "r%d" id
  else Printf.sprintf "f%d" (id - t.niregs)

let defs t instr =
  List.map (ireg t) (I.idefs instr) @ List.map (freg t) (I.fdefs instr)

let uses t instr =
  List.map (ireg t) (I.iuses instr) @ List.map (freg t) (I.fuses instr)

let term_uses t (term : Block.terminator) =
  match term with
  | Block.Jmp _ -> []
  | Block.Br (r, _, _) -> [ ireg t r ]
  | Block.Ret (Block.Ret_int r) -> [ ireg t r ]
  | Block.Ret (Block.Ret_float f) -> [ freg t f ]
  | Block.Ret Block.Ret_void -> []

(* Registers holding the procedure's parameters: defined on entry. *)
let params t (p : Pp_ir.Proc.t) =
  let is = List.init p.Pp_ir.Proc.iparams (fun r -> ireg t r) in
  let fs = List.init p.Pp_ir.Proc.fparams (fun f -> freg t f) in
  is @ fs
