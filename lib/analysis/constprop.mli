(** Conditional constant propagation (block-granular SCCP).

    Tracks per-register compile-time constants and propagates only along
    CFG edges proven executable; a conditional branch with a constant
    condition enables just the matching arm.  Constant folding mirrors the
    VM's integer semantics exactly (native-width arithmetic, 6-bit shift
    masking, arithmetic right shift); division or remainder by a constant
    zero folds to {!Top} because the VM traps there.

    Results feed the feasibility pruner ({!Feasibility}), the static
    frequency estimator ({!Freq}) and the constant-branch lints
    ({!Lint}). *)

type value =
  | Top  (** unknown / any value *)
  | Const of int

val join : value -> value -> value

type t

val analyze : Pp_ir.Cfg.t -> t

(** True when the block is reachable along executable edges only; blocks
    guarded by statically-false branches are not. *)
val reachable : t -> Pp_ir.Block.label -> bool

(** True when the fixpoint proved the edge can be taken.  Never-executable
    edges are exactly the statically infeasible ones. *)
val edge_executable : t -> Pp_graph.Digraph.edge -> bool

(** Register state on entry to / exit from a reached block (a fresh copy);
    [None] when the block is unreached. *)
val entry_state : t -> Pp_ir.Block.label -> value array option

val exit_state : t -> Pp_ir.Block.label -> value array option

(** For a reached block ending in [Br], the condition register's abstract
    value at the terminator; [None] otherwise. *)
val branch_value : t -> Pp_ir.Block.label -> value option

(** Destructively advance a register state across one instruction, using
    the same folding rules as the fixpoint.  Exposed for path-sensitive
    clients that replay straight-line code ({!Feasibility}). *)
val transfer : value array -> Pp_ir.Instr.t -> unit
