(** Static execution-frequency estimation (Wu–Larus style heuristics).

    Produces, per procedure invocation, an estimated execution frequency
    for every CFG vertex and edge: branch probabilities from simple
    heuristics (backedge taken x7, post-dominating successor x3,
    statically infeasible edge 0 when a {!Constprop} fixpoint is
    supplied), acyclic propagation from ENTRY in reverse postorder, and an
    8x-per-loop-nesting-level scale matching
    {!Pp_core.Static_weights}. *)

type t

val estimate : ?cp:Constprop.t -> Pp_ir.Cfg.t -> t

(** Estimated executions per invocation; ENTRY is 1.0 by construction. *)
val vertex_freq : t -> Pp_graph.Digraph.vertex -> float

val block_freq : t -> Pp_ir.Block.label -> float

(** Probability the edge is taken when control is at its source. *)
val edge_prob : t -> Pp_graph.Digraph.edge -> float

(** [vertex_freq src * edge_prob e]. *)
val edge_freq : t -> Pp_graph.Digraph.edge -> float

val loop_depth : t -> Pp_graph.Digraph.vertex -> int
val loops : t -> Pp_graph.Loops.t
