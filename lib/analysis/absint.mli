(** Sound abstract interpreter over the CFG IR.

    Interprets one procedure with a reduced product of three components
    per integer register: a pointer base, an {!Interval} and a
    {!Congruence} (the interval's overflow verdict gates the congruence
    transfer), plus a {!Taint} bit threaded through every operation.
    Float registers carry taint only.  Constant-offset frame slots are
    tracked with strong updates; the address of any slot that escapes
    (stored to memory or passed to a call) is added to an escape hull,
    and calls havoc exactly the hulled slots — which is why a spilled
    path register survives calls: its address never escapes.

    The fixpoint widens at the natural-loop headers found by
    {!Pp_graph.Loops} after a short delay, with a visit-count safety net
    for irreducible retreating edges, then runs a bounded number of
    descending passes to recover precision lost to widening (sound:
    applying the monotone transfer to a post-fixpoint yields another
    over-approximation of the least fixpoint).

    Clients: the bounds and non-interference certifiers in [Verifier]
    (`pp prove`), and the runtime soundness oracle in the test suite. *)

type base =
  | Bnum  (** a plain integer: the numeric part is the value itself *)
  | Bglobal of string  (** base address of a global, plus offset *)
  | Bframe  (** the activation's frame pointer, plus offset *)
  | Bany  (** top; numeric parts are top too *)

type value = {
  base : base;
  itv : Interval.t;
  cong : Congruence.t;
  taint : Taint.t;
}

(** Abstract machine state at one program point. *)
type env

type config = {
  budget : int;  (** VM instruction budget the caps derive from *)
  pic_cap : int;  (** upper bound on any PIC reading *)
  cell_cap : int;  (** upper bound on any table-cell value *)
  widen_delay : int;  (** joins at a loop header before widening *)
  fuel : int;  (** joins anywhere before safety-net widening *)
  descend : int;  (** post-fixpoint narrowing passes *)
  policy : Taint.policy;
  tables : (string * int) list;  (** table global -> size in words *)
}

(** The PIC and table-cell caps are machine invariants derived from the
    instruction budget (a counter advances a bounded number of times per
    executed instruction), cross-checked against real executions by the
    runtime oracle. *)
val config :
  ?budget:int ->
  ?policy:Taint.policy ->
  ?tables:(string * int) list ->
  unit ->
  config

type t

val analyze : ?conf:config -> Pp_ir.Cfg.t -> t
val conf : t -> config
val reached : t -> Pp_ir.Block.label -> bool
val entry_env : t -> Pp_ir.Block.label -> env option

(** Environment in force at the terminator of a reached block. *)
val term_env : t -> Pp_ir.Block.label -> env option

(** Replay a reached block with the fixpoint's transfer functions: [f]
    sees the environment immediately before each instruction.  Returns
    the environment before the terminator. *)
val iter_block :
  t ->
  Pp_ir.Block.label ->
  (pos:int -> env -> Pp_ir.Instr.t -> unit) ->
  env option

val ireg : env -> Pp_ir.Instr.ireg -> value
val ftaint : env -> Pp_ir.Instr.freg -> Taint.t

(** Abstract address of [base + off]. *)
val address : env -> base:Pp_ir.Instr.ireg -> off:int -> value

(** Abstract result of loading [base + off]. *)
val loaded : config -> env -> base:Pp_ir.Instr.ireg -> off:int -> value

(** Whether an address-offset interval lies entirely inside the
    instrumentation-owned frame-slot range of the policy. *)
val in_fresh_slots : config -> Interval.t -> bool

val transfer : config -> env -> Pp_ir.Instr.t -> env

(** Concretization membership for the runtime oracle: does machine value
    [x], given the activation's frame pointer and a resolver for global
    base addresses, lie inside the abstract value?  Components the oracle
    cannot resolve answer [true] — only definite violations count. *)
val admits :
  global_base:(string -> int option) -> frame:int -> value -> int -> bool

val pp_value : Format.formatter -> value -> unit
