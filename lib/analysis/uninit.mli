(** May-be-uninitialised register detection (forward, union confluence).

    At entry only the parameter registers are initialised; a register
    leaves the may-uninitialised set when every path to a point defines
    it.  {!warnings} reports each use of a possibly-uninitialised
    register.  (The VM zero-fills registers, so these are lint findings,
    not undefined behaviour.) *)

type t

val compute : Pp_ir.Cfg.t -> t
val maybe_uninit_in : t -> Pp_ir.Block.label -> Dataflow.Bitset.t option
val warnings : t -> Pp_ir.Diag.t list
