(* Conditional constant propagation over the CFG (block-granular SCCP in
   the style of Wegman–Zadeck): the analysis tracks, per integer register,
   whether it holds a compile-time constant, and propagates only along CFG
   edges proven executable.  A conditional branch whose condition register
   is constant enables just the matching arm, so code guarded by the dead
   arm never contributes to the fixpoint.

   The value lattice is [Top] (unknown) above [Const n]; "unreached" is
   represented by a block having no in-state at all.  Folding mirrors the
   VM's integer semantics ({!Pp_vm.Interp}) exactly: OCaml native-width
   arithmetic, shifts masked to 6 bits, arithmetic right shift, and
   division/remainder by a constant zero treated as [Top] (the VM traps;
   the analysis must not pretend to know the result). *)

module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module I = Pp_ir.Instr
module Digraph = Pp_graph.Digraph

type value = Top | Const of int

let join a b =
  match (a, b) with
  | Const x, Const y when x = y -> a
  | _ -> Top

let shift_mask = 63

let fold_ibinop op a b =
  match (op : I.ibinop) with
  | I.Add -> Const (a + b)
  | I.Sub -> Const (a - b)
  | I.Mul -> Const (a * b)
  | I.Div -> if b = 0 then Top else Const (a / b)
  | I.Rem -> if b = 0 then Top else Const (a mod b)
  | I.And -> Const (a land b)
  | I.Or -> Const (a lor b)
  | I.Xor -> Const (a lxor b)
  | I.Shl -> Const (a lsl (b land shift_mask))
  | I.Shr -> Const (a asr (b land shift_mask))

let fold_icmp c a b =
  let r =
    match (c : I.cmp) with
    | I.Eq -> a = b
    | I.Ne -> a <> b
    | I.Lt -> a < b
    | I.Le -> a <= b
    | I.Gt -> a > b
    | I.Ge -> a >= b
  in
  Const (if r then 1 else 0)

(* Destructively advance [state] across one instruction. *)
let transfer state (instr : I.t) =
  let get r = state.(r) in
  let set r v = state.(r) <- v in
  match instr with
  | I.Iconst (rd, n) -> set rd (Const n)
  | I.Imov (rd, rs) -> set rd (get rs)
  | I.Ibinop (op, rd, rs1, rs2) -> (
      match (get rs1, get rs2) with
      | Const a, Const b -> set rd (fold_ibinop op a b)
      | _ -> set rd Top)
  | I.Ibinop_imm (op, rd, rs, imm) -> (
      match get rs with
      | Const a -> set rd (fold_ibinop op a imm)
      | Top -> set rd Top)
  | I.Icmp (c, rd, rs1, rs2) -> (
      match (get rs1, get rs2) with
      | Const a, Const b -> set rd (fold_icmp c a b)
      | _ -> set rd Top)
  | I.Icmp_imm (c, rd, rs, imm) -> (
      match get rs with
      | Const a -> set rd (fold_icmp c a imm)
      | Top -> set rd Top)
  | _ ->
      (* Loads, calls, counter reads, symbol addresses, … — anything whose
         result the analysis cannot model kills its integer definitions. *)
      List.iter (fun rd -> set rd Top) (I.idefs instr)

type t = {
  cfg : Cfg.t;
  entry_states : value array option array;  (* per block label *)
  exit_states : value array option array;
  branch_vals : value option array;  (* Br condition value, per label *)
  edge_exec : bool array;  (* per edge id *)
}

(* Out-edges of a reached block that its terminator can actually take,
   given the branch condition's abstract value. *)
let executable_out_edges (cfg : Cfg.t) (b : Block.t) cond =
  let edges = Digraph.out_edges cfg.Cfg.graph (Cfg.vertex_of_label cfg b.Block.label) in
  match b.Block.term with
  | Block.Jmp _ | Block.Ret _ -> edges
  | Block.Br _ -> (
      match cond with
      | Top -> edges
      | Const c ->
          let want : Cfg.edge_role = if c <> 0 then Cfg.Branch_true else Cfg.Branch_false in
          List.filter (fun e -> Cfg.role cfg e = want) edges)

let analyze (cfg : Cfg.t) =
  let proc = cfg.Cfg.proc in
  let nblocks = Proc.num_blocks proc in
  let nregs = max proc.Proc.niregs 1 in
  let t =
    {
      cfg;
      entry_states = Array.make nblocks None;
      exit_states = Array.make nblocks None;
      branch_vals = Array.make nblocks None;
      edge_exec = Array.make (Digraph.num_edges cfg.Cfg.graph) false;
    }
  in
  let queue = Queue.create () in
  let queued = Array.make nblocks false in
  let enqueue l =
    if not queued.(l) then begin
      queued.(l) <- true;
      Queue.add l queue
    end
  in
  (* ENTRY -> entry block: parameters and everything else unknown. *)
  (match Digraph.out_edges cfg.Cfg.graph cfg.Cfg.entry with
  | [ e ] -> t.edge_exec.(e.Digraph.id) <- true
  | _ -> invalid_arg "Constprop.analyze: malformed ENTRY");
  t.entry_states.(proc.Proc.entry) <- Some (Array.make nregs Top);
  enqueue proc.Proc.entry;
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    queued.(l) <- false;
    match t.entry_states.(l) with
    | None -> ()
    | Some in_state ->
        let b = Proc.block proc l in
        let state = Array.copy in_state in
        List.iter (transfer state) b.Block.instrs;
        t.exit_states.(l) <- Some state;
        let cond =
          match b.Block.term with
          | Block.Br (r, _, _) ->
              let v = state.(r) in
              t.branch_vals.(l) <- Some v;
              v
          | _ -> Top
        in
        List.iter
          (fun (e : Digraph.edge) ->
            t.edge_exec.(e.Digraph.id) <- true;
            match Cfg.label_of_vertex cfg e.Digraph.dst with
            | None -> ()  (* EXIT *)
            | Some dst ->
                let changed =
                  match t.entry_states.(dst) with
                  | None ->
                      t.entry_states.(dst) <- Some (Array.copy state);
                      true
                  | Some old ->
                      let c = ref false in
                      Array.iteri
                        (fun i v ->
                          let j = join old.(i) v in
                          if j <> old.(i) then begin
                            old.(i) <- j;
                            c := true
                          end)
                        state;
                      !c
                in
                if changed then enqueue dst)
          (executable_out_edges cfg b cond)
  done;
  t

let reachable t l = t.entry_states.(l) <> None
let edge_executable t (e : Digraph.edge) = t.edge_exec.(e.Digraph.id)

let entry_state t l =
  Option.map Array.copy t.entry_states.(l)

let exit_state t l =
  Option.map Array.copy t.exit_states.(l)

let branch_value t l = t.branch_vals.(l)
