(* Static path feasibility for Ball–Larus numberings.

   Two layers of evidence, both derived from {!Constprop}:

   - edge infeasibility: a path crossing a CFG edge the conditional
     constant propagation proved never-executable cannot occur;

   - branch correlation: replaying a path's straight-line code symbolically
     (starting from Top, or from the constant-propagation exit state of the
     backedge source for paths that begin after a backedge) may show that a
     branch condition is a constant contradicting the arm the path takes —
     e.g. [t = a > 0 ? 1 : 0; if (t > 0)] kills the mixed arms.

   Both are over-approximations of concrete execution, so a path flagged
   infeasible can never be observed dynamically: pruning is sound. *)

module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Digraph = Pp_graph.Digraph
module Ball_larus = Pp_core.Ball_larus

type verdict =
  | Feasible
  | Infeasible_edge of Digraph.edge
      (* crosses a never-executable CFG edge *)
  | Infeasible_branch of { block : Block.label; value : int }
      (* a constant branch condition contradicts the arm the path takes *)

type t = {
  cfg : Cfg.t;
  bl : Ball_larus.t;
  cp : Constprop.t;
  table : verdict array option;  (* per path sum, when enumerated *)
}

let default_max_enumerate = 4096

(* The CFG edge each path block leaves through, in path order.  The last
   block exits through the Return edge (already in [real_edges]) or the
   sink backedge. *)
let out_edges_of (trav : Ball_larus.traversal) =
  let interior =
    match trav.path.Ball_larus.source with
    | Ball_larus.From_entry -> List.tl trav.real_edges
    | Ball_larus.After_backedge _ -> trav.real_edges
  in
  match trav.path.Ball_larus.sink with
  | Ball_larus.To_exit -> interior
  | Ball_larus.Into_backedge b -> interior @ [ b ]

let check_sum cfg bl cp sum =
  let trav = Ball_larus.traverse bl sum in
  let crossed =
    (match trav.Ball_larus.path.Ball_larus.source with
    | Ball_larus.From_entry -> []
    | Ball_larus.After_backedge b -> [ b ])
    @ trav.Ball_larus.real_edges
    @
    match trav.Ball_larus.path.Ball_larus.sink with
    | Ball_larus.To_exit -> []
    | Ball_larus.Into_backedge b -> [ b ]
  in
  match
    List.find_opt (fun e -> not (Constprop.edge_executable cp e)) crossed
  with
  | Some e -> Infeasible_edge e
  | None -> (
      (* Symbolic replay along the path. *)
      let proc = cfg.Cfg.proc in
      let init =
        match trav.Ball_larus.path.Ball_larus.source with
        | Ball_larus.From_entry ->
            Some (Array.make (max proc.Proc.niregs 1) Constprop.Top)
        | Ball_larus.After_backedge b -> (
            match Cfg.label_of_vertex cfg b.Digraph.src with
            | Some l -> Constprop.exit_state cp l
            | None -> None)
      in
      match init with
      | None ->
          (* Backedge source unreached — its out-edges are not executable,
             so the crossed-edge check above already caught this. *)
          assert false
      | Some state ->
          let exception Contradiction of verdict in
          let step l (out : Digraph.edge) =
            let b = Proc.block proc l in
            List.iter (Constprop.transfer state) b.Block.instrs;
            match b.Block.term with
            | Block.Br (r, _, _) -> (
                match state.(r) with
                | Constprop.Top -> ()
                | Constprop.Const c ->
                    let taken : Cfg.edge_role =
                      if c <> 0 then Cfg.Branch_true else Cfg.Branch_false
                    in
                    if Cfg.role cfg out <> taken then
                      raise
                        (Contradiction
                           (Infeasible_branch { block = l; value = c })))
            | Block.Jmp _ | Block.Ret _ -> ()
          in
          (try
             List.iter2 step trav.Ball_larus.path.Ball_larus.blocks
               (out_edges_of trav);
             Feasible
           with Contradiction v -> v))

let analyze ?(max_enumerate = default_max_enumerate) cfg bl =
  let cp = Constprop.analyze cfg in
  let table =
    let n = Ball_larus.num_paths bl in
    if n <= max_enumerate then
      Some (Array.init n (fun sum -> check_sum cfg bl cp sum))
    else None
  in
  { cfg; bl; cp; table }

let enumerated t = t.table <> None
let constprop t = t.cp

let check t sum =
  match t.table with
  | Some table -> table.(sum)
  | None -> check_sum t.cfg t.bl t.cp sum

let feasible t sum = check t sum = Feasible

let num_feasible t =
  match t.table with
  | Some table ->
      Array.fold_left
        (fun acc v -> if v = Feasible then acc + 1 else acc)
        0 table
  | None -> Ball_larus.num_paths t.bl

let infeasible_sums t =
  match t.table with
  | None -> []
  | Some table ->
      let acc = ref [] in
      for sum = Array.length table - 1 downto 0 do
        if table.(sum) <> Feasible then acc := sum :: !acc
      done;
      !acc

let infeasible_edges t =
  Digraph.fold_edges
    (fun e acc ->
      if Constprop.edge_executable t.cp e then acc else e :: acc)
    t.cfg.Cfg.graph []
  |> List.rev

let prune t =
  if not (enumerated t) then
    invalid_arg "Feasibility.prune: path table too large to enumerate";
  Ball_larus.prune t.bl ~feasible:(feasible t)

let pruner ?max_enumerate cfg bl =
  let t = analyze ?max_enumerate cfg bl in
  if enumerated t then Some (prune t) else None
