module I = Pp_ir.Instr

type t = { lo : int; hi : int }

let top = { lo = min_int; hi = max_int }
let const n = { lo = n; hi = n }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make";
  { lo; hi }

let lo t = t.lo
let hi t = t.hi
let is_top t = t.lo = min_int && t.hi = max_int
let is_const t = if t.lo = t.hi then Some t.lo else None
let equal (a : t) (b : t) = a.lo = b.lo && a.hi = b.hi
let mem n t = t.lo <= n && n <= t.hi
let leq a b = b.lo <= a.lo && a.hi <= b.hi
let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let widen old next =
  {
    lo = (if next.lo < old.lo then min_int else old.lo);
    hi = (if next.hi > old.hi then max_int else old.hi);
  }

(* Overflow-checked machine arithmetic: [None] when the mathematical result
   does not fit in an OCaml int, i.e. when the VM would silently wrap.
   Because ints are bounded, [min_int, max_int] is genuinely top — no
   sentinel encoding is needed, and a wrapping transfer simply returns
   [top] (saturating would be unsound). *)
let add_ovf a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let sub_ovf a b =
  let d = a - b in
  if (a >= 0) <> (b >= 0) && (d >= 0) <> (a >= 0) then None else Some d

let mul_ovf a b =
  if a = 0 || b = 0 then Some 0
  else if (a = min_int && b = -1) || (b = min_int && a = -1) then None
  else
    let p = a * b in
    if p / b = a then Some p else None

let hull = function
  | [] -> invalid_arg "Interval.hull"
  | v :: vs ->
      List.fold_left
        (fun acc x -> { lo = min acc.lo x; hi = max acc.hi x })
        { lo = v; hi = v } vs

let add a b =
  match (add_ovf a.lo b.lo, add_ovf a.hi b.hi) with
  | Some lo, Some hi -> ({ lo; hi }, true)
  | _ -> (top, false)

let sub a b =
  match (sub_ovf a.lo b.hi, sub_ovf a.hi b.lo) with
  | Some lo, Some hi -> ({ lo; hi }, true)
  | _ -> (top, false)

let mul a b =
  let corners =
    [ mul_ovf a.lo b.lo; mul_ovf a.lo b.hi; mul_ovf a.hi b.lo;
      mul_ovf a.hi b.hi ]
  in
  if List.mem None corners then (top, false)
  else (hull (List.filter_map Fun.id corners), true)

(* Truncated division.  The only wrapping case is min_int / -1; a zero
   divisor traps (no value flows), so divisor corners are the extreme
   nonzero values of each sign segment. *)
let div a b =
  if a.lo = min_int && mem (-1) b then (top, false)
  else
    let divisors =
      List.filter (fun d -> d <> 0 && mem d b) [ b.lo; b.hi; -1; 1 ]
    in
    if divisors = [] then (top, true)
    else
      let qs =
        List.concat_map (fun d -> [ a.lo / d; a.hi / d ]) divisors
      in
      (hull qs, true)

let rem a b =
  if b.lo = 0 && b.hi = 0 then (top, true)
  else
    let abs_cap x = if x = min_int then max_int else abs x in
    (* |a mod b| <= min (|a|, |b| - 1); the sign follows the dividend. *)
    let m =
      min
        (max (abs_cap a.lo) (abs_cap a.hi))
        (max (abs_cap b.lo) (abs_cap b.hi) - 1)
    in
    let lo = if a.lo >= 0 then 0 else -m
    and hi = if a.hi <= 0 then 0 else m in
    ({ lo; hi }, true)

(* Bitwise operators never overflow, so no_wrap is always true; precision
   is only attempted on non-negative ranges. *)
let and_ a b =
  if a.lo >= 0 && b.lo >= 0 then ({ lo = 0; hi = min a.hi b.hi }, true)
  else if b.lo >= 0 then ({ lo = 0; hi = b.hi }, true)
  else if a.lo >= 0 then ({ lo = 0; hi = a.hi }, true)
  else (top, true)

(* Smallest 2^k - 1 covering v (v >= 0). *)
let pow2_mask v =
  let rec go m = if m >= v then m else go ((m lsl 1) lor 1) in
  go 0

let or_ a b =
  if a.lo >= 0 && b.lo >= 0 then
    ({ lo = max a.lo b.lo; hi = pow2_mask (max a.hi b.hi) }, true)
  else (top, true)

let xor a b =
  if a.lo >= 0 && b.lo >= 0 then
    ({ lo = 0; hi = pow2_mask (max a.hi b.hi) }, true)
  else (top, true)

(* The VM masks shift counts to 6 bits. *)
let shift_counts b = if b.lo >= 0 && b.hi <= 63 then (b.lo, b.hi) else (0, 63)

let shl a b =
  let clo, chi = shift_counts b in
  (* a lsl c = a * 2^c; 1 lsl 62 already wraps to min_int in 63-bit ints. *)
  if chi >= 62 then
    if a.lo = 0 && a.hi = 0 then (const 0, true) else (top, false)
  else
    let corners =
      List.concat_map
        (fun c ->
          let p = 1 lsl c in
          [ mul_ovf a.lo p; mul_ovf a.hi p ])
        [ clo; chi ]
    in
    if List.mem None corners then (top, false)
    else (hull (List.filter_map Fun.id corners), true)

let shr a b =
  let clo, chi = shift_counts b in
  (hull [ a.lo asr clo; a.lo asr chi; a.hi asr clo; a.hi asr chi ], true)

(* Returns the abstract result together with the no-wrap promise: [true]
   means no concrete operand pair drawn from the inputs overflows, which
   gates the modular transfer in {!Congruence}. *)
let binop_report op a b =
  match (op : I.ibinop) with
  | I.Add -> add a b
  | I.Sub -> sub a b
  | I.Mul -> mul a b
  | I.Div -> div a b
  | I.Rem -> rem a b
  | I.And -> and_ a b
  | I.Or -> or_ a b
  | I.Xor -> xor a b
  | I.Shl -> shl a b
  | I.Shr -> shr a b

let binop ~no_wrap:_ op a b = fst (binop_report op a b)

let bool_top = { lo = 0; hi = 1 }
let of_bool b = const (if b then 1 else 0)

let cmp c a b =
  let t = of_bool true and f = of_bool false in
  let disjoint = a.hi < b.lo || b.hi < a.lo in
  match (c : I.cmp) with
  | I.Eq ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then t
      else if disjoint then f
      else bool_top
  | I.Ne ->
      if disjoint then t
      else if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then f
      else bool_top
  | I.Lt -> if a.hi < b.lo then t else if a.lo >= b.hi then f else bool_top
  | I.Le -> if a.hi <= b.lo then t else if a.lo > b.hi then f else bool_top
  | I.Gt -> if a.lo > b.hi then t else if a.hi <= b.lo then f else bool_top
  | I.Ge -> if a.lo >= b.hi then t else if a.hi < b.lo then f else bool_top

let pp_bound ppf n =
  if n = min_int then Format.pp_print_string ppf "-inf"
  else if n = max_int then Format.pp_print_string ppf "+inf"
  else Format.pp_print_int ppf n

let pp ppf t =
  if t.lo = t.hi then Format.fprintf ppf "{%a}" pp_bound t.lo
  else Format.fprintf ppf "[%a,%a]" pp_bound t.lo pp_bound t.hi
