(* Static instrumentation cost / perturbation report.

   Ties the analyzer stack together: for every procedure, how many probes
   the chosen instrumentation mode inserts, how many code slots they
   occupy, how often the {!Freq} estimator predicts they will execute per
   invocation — and, when a dynamic profile from `pp run` is supplied, the
   estimated-versus-measured probe-execution comparison that validates the
   heuristics.

   Probe accounting is exact on the measured side: a path profile decodes
   into the precise sequence of CFG edges each traversal crossed, so the
   number of executed increments and commits follows from the placement
   with no modeling slack.  Only the estimate is heuristic. *)

module Cfg = Pp_ir.Cfg
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program
module Diag = Pp_ir.Diag
module Digraph = Pp_graph.Digraph
module Ball_larus = Pp_core.Ball_larus
module Profile_io = Pp_core.Profile_io
module Profile = Pp_core.Profile
module Instrument = Pp_instrument.Instrument

type measured = {
  invocations : int;  (* executed From_entry paths *)
  probes : int;  (* executed path-probe operations *)
}

type row = {
  proc : string;
  blocks : int;
  npaths : int;  (* 0 when the mode does not number paths *)
  nfeasible : int option;  (* None when not enumerated / not a path mode *)
  probe_sites : int;  (* static probe locations *)
  added_slots : int;  (* code-size growth, instruction slots *)
  est_path : float;  (* estimated path-probe executions per invocation *)
  est_ctx : float;  (* estimated context-probe executions per invocation *)
  measured : measured option;
}

type report = { mode : Instrument.mode; rows : row list }

type breakdown = {
  entry_traversals : int;
  inits : int;
  increments : int;
  commits : int;
  backedge_commits : int;
}

(* Path-probe executions under a placement: the entry init (for
   From_entry paths when the placement needs one), one increment per
   crossed increment edge, and the single commit that ends every
   traversal (backedge op or return commit).  A profile decodes into the
   precise edges each traversal crossed, so these counts are exact. *)
let breakdown_of ~is_increment ~init_needed bl paths =
  let entry_traversals = ref 0
  and inits = ref 0
  and increments = ref 0
  and commits = ref 0
  and backedge_commits = ref 0 in
  List.iter
    (fun (sum, (m : Profile.path_metrics)) ->
      let trav = Ball_larus.traverse bl sum in
      let f = m.Profile.freq in
      (match trav.Ball_larus.path.Ball_larus.source with
      | Ball_larus.From_entry ->
          entry_traversals := !entry_traversals + f;
          if init_needed then inits := !inits + f
      | Ball_larus.After_backedge _ -> ());
      List.iter
        (fun (e : Digraph.edge) ->
          if is_increment.(e.id) then increments := !increments + f)
        trav.Ball_larus.real_edges;
      commits := !commits + f;
      match trav.Ball_larus.path.Ball_larus.sink with
      | Ball_larus.Into_backedge _ -> backedge_commits := !backedge_commits + f
      | Ball_larus.To_exit -> ())
    paths;
  {
    entry_traversals = !entry_traversals;
    inits = !inits;
    increments = !increments;
    commits = !commits;
    backedge_commits = !backedge_commits;
  }

let placement_of ~options bl =
  if options.Instrument.optimize_placement then
    let weights = Pp_core.Static_weights.edge_weight (Ball_larus.cfg bl) in
    Ball_larus.optimized_placement ~weights bl
  else Ball_larus.simple_placement bl

let measured_breakdown ?(options = Instrument.default_options) bl paths =
  let cfg = Ball_larus.cfg bl in
  let placement = placement_of ~options bl in
  let is_increment = Array.make (Digraph.num_edges cfg.Cfg.graph) false in
  List.iter
    (fun ((e : Digraph.edge), _) -> is_increment.(e.id) <- true)
    placement.Ball_larus.increments;
  breakdown_of ~is_increment
    ~init_needed:placement.Ball_larus.init_needed bl paths

let count_call_sites (p : Proc.t) freq =
  Array.fold_left
    (fun acc (b : Pp_ir.Block.t) ->
      List.fold_left
        (fun acc instr ->
          if Pp_ir.Instr.is_call instr then
            acc +. Freq.block_freq freq b.Pp_ir.Block.label
          else acc)
        acc b.Pp_ir.Block.instrs)
    0.0 p.Proc.blocks

let return_freq cfg freq =
  Digraph.fold_edges
    (fun e acc ->
      if Cfg.role cfg e = Cfg.Return then acc +. Freq.edge_freq freq e
      else acc)
    cfg.Cfg.graph 0.0

let profiles_context = function
  | Instrument.Context_hw | Instrument.Context_flow -> true
  | Instrument.Edge_freq | Instrument.Flow_freq | Instrument.Flow_hw -> false

exception Fail of Diag.t

let compute ?(options = Instrument.default_options) ?max_enumerate ~mode
    ?profile (prog : Program.t) =
  try
    (match profile with
    | None -> ()
    | Some (s : Profile_io.saved) ->
        let hash = Profile_io.program_hash prog in
        if s.Profile_io.program_hash <> hash then
          raise
            (Fail
               (Diag.error (Diag.proc_loc "<header>")
                  "profile is from a different program (hash %s, expected \
                   %s)"
                  s.Profile_io.program_hash hash));
        if s.Profile_io.mode <> Instrument.mode_name mode then
          raise
            (Fail
               (Diag.error (Diag.proc_loc "<header>")
                  "profile mode %s does not match requested mode %s"
                  s.Profile_io.mode
                  (Instrument.mode_name mode))));
    let instrumented, manifest = Instrument.run ~options ~mode prog in
    let rows =
      List.map
        (fun (info : Instrument.proc_info) ->
          let p = Program.proc_exn prog info.Instrument.proc in
          let p' = Program.proc_exn instrumented info.Instrument.proc in
          let added_slots = Proc.size_slots p' - Proc.size_slots p in
          match info.Instrument.numbering with
          | Some bl ->
              (* Path-profiled procedure: feasibility + frequency. *)
              let cfg = Ball_larus.cfg bl in
              let fs = Feasibility.analyze ?max_enumerate cfg bl in
              let cp = Feasibility.constprop fs in
              let freq = Freq.estimate ~cp cfg in
              let placement = placement_of ~options bl in
              let is_increment =
                Array.make (Digraph.num_edges cfg.Cfg.graph) false
              in
              List.iter
                (fun ((e : Digraph.edge), _) -> is_increment.(e.id) <- true)
                placement.Ball_larus.increments;
              let init_needed = placement.Ball_larus.init_needed in
              let est_path =
                (if init_needed then 1.0 else 0.0)
                +. List.fold_left
                     (fun acc ((e : Digraph.edge), _) ->
                       acc +. Freq.edge_freq freq e)
                     0.0 placement.Ball_larus.increments
                +. List.fold_left
                     (fun acc (op : Ball_larus.backedge_op) ->
                       acc +. Freq.edge_freq freq op.Ball_larus.backedge)
                     0.0 placement.Ball_larus.backedge_ops
                +. return_freq cfg freq
              in
              let est_ctx =
                if profiles_context mode then
                  1.0 +. return_freq cfg freq +. count_call_sites p freq
                else 0.0
              in
              let probe_sites =
                (if init_needed then 1 else 0)
                + List.length placement.Ball_larus.increments
                + List.length placement.Ball_larus.backedge_ops
                + Digraph.fold_edges
                    (fun e acc ->
                      if Cfg.role cfg e = Cfg.Return then acc + 1 else acc)
                    cfg.Cfg.graph 0
                + (if profiles_context mode then 2 + p.Proc.nsites else 0)
              in
              let measured =
                match profile with
                | None -> None
                | Some s -> (
                    match
                      List.find_opt
                        (fun (n, _, _) -> n = info.Instrument.proc)
                        s.Profile_io.procs
                    with
                    | None -> None
                    | Some (_, npaths_saved, paths) ->
                        if npaths_saved <> Ball_larus.num_paths bl then
                          raise
                            (Fail
                               (Diag.error
                                  (Diag.proc_loc info.Instrument.proc)
                                  "profile numbered with %d potential \
                                   paths, program has %d"
                                  npaths_saved
                                  (Ball_larus.num_paths bl)));
                        (* Soundness gate: a dynamically observed path must
                           never have been pruned. *)
                        (if Feasibility.enumerated fs then
                           match
                             List.find_opt
                               (fun (sum, _) ->
                                 not (Feasibility.feasible fs sum))
                               paths
                           with
                           | Some (sum, _) ->
                               raise
                                 (Fail
                                    (Diag.error
                                       (Diag.proc_loc info.Instrument.proc)
                                       "observed path %d was statically \
                                        pruned as infeasible (analyzer \
                                        bug)"
                                       sum))
                           | None -> ());
                        (* Annotation agreement, when the shard carries
                           one. *)
                        (match
                           List.assoc_opt info.Instrument.proc
                             s.Profile_io.feasible
                         with
                        | Some k
                          when Feasibility.enumerated fs
                               && k <> Feasibility.num_feasible fs ->
                            raise
                              (Fail
                                 (Diag.error
                                    (Diag.proc_loc info.Instrument.proc)
                                    "profile certifies %d feasible paths, \
                                     analysis finds %d"
                                    k
                                    (Feasibility.num_feasible fs)))
                        | _ -> ());
                        let b =
                          breakdown_of ~is_increment ~init_needed bl paths
                        in
                        Some
                          {
                            invocations = b.entry_traversals;
                            probes = b.inits + b.increments + b.commits;
                          })
              in
              {
                proc = info.Instrument.proc;
                blocks = Proc.num_blocks p;
                npaths = Ball_larus.num_paths bl;
                nfeasible =
                  (if Feasibility.enumerated fs then
                     Some (Feasibility.num_feasible fs)
                   else None);
                probe_sites;
                added_slots;
                est_path;
                est_ctx;
                measured;
              }
          | None ->
              (* Edge-profiled or context-only procedure. *)
              let cfg = Cfg.of_proc p in
              let cp = Constprop.analyze cfg in
              let freq = Freq.estimate ~cp cfg in
              let est_path, probe_sites =
                match info.Instrument.table with
                | Instrument.Edge_table { plan; _ } ->
                    let chords = Pp_core.Edge_profile.chords plan in
                    ( List.fold_left
                        (fun acc ((e : Digraph.edge), _) ->
                          acc +. Freq.edge_freq freq e)
                        0.0 chords,
                      List.length chords )
                | _ -> (0.0, if profiles_context mode then 2 + p.Proc.nsites else 0)
              in
              let est_ctx =
                if profiles_context mode then
                  1.0 +. return_freq cfg freq +. count_call_sites p freq
                else 0.0
              in
              {
                proc = info.Instrument.proc;
                blocks = Proc.num_blocks p;
                npaths = 0;
                nfeasible = None;
                probe_sites;
                added_slots;
                est_path;
                est_ctx;
                measured = None;
              })
        manifest.Instrument.infos
    in
    Ok { mode; rows }
  with
  | Fail d -> Error d
  | Ball_larus.Unsupported msg ->
      Error (Diag.error (Diag.proc_loc "<cost>") "%s" msg)

let render (r : report) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "instrumentation cost report [%s]" (Instrument.mode_name r.mode);
  line "%-20s %6s %7s %8s %6s %7s %10s %10s" "proc" "blocks" "paths"
    "feasible" "sites" "+slots" "est/call" "ctx/call";
  List.iter
    (fun row ->
      line "%-20s %6d %7d %8s %6d %7d %10.2f %10.2f" row.proc row.blocks
        row.npaths
        (match row.nfeasible with
        | Some k -> string_of_int k
        | None -> "-")
        row.probe_sites row.added_slots row.est_path row.est_ctx)
    r.rows;
  let measured_rows =
    List.filter_map
      (fun row ->
        match row.measured with Some m -> Some (row, m) | None -> None)
      r.rows
  in
  if measured_rows <> [] then begin
    line "";
    line "estimated vs measured probe executions (path probes):";
    line "%-20s %12s %12s %12s %8s" "proc" "invocations" "estimated"
      "measured" "error";
    let test = ref 0.0 and tmeas = ref 0 in
    List.iter
      (fun (row, m) ->
        let est = row.est_path *. float_of_int m.invocations in
        test := !test +. est;
        tmeas := !tmeas + m.probes;
        let err =
          if m.probes = 0 then 0.0
          else (est -. float_of_int m.probes) /. float_of_int m.probes
               *. 100.0
        in
        line "%-20s %12d %12.0f %12d %+7.1f%%" row.proc m.invocations est
          m.probes err)
      measured_rows;
    let terr =
      if !tmeas = 0 then 0.0
      else (!test -. float_of_int !tmeas) /. float_of_int !tmeas *. 100.0
    in
    line "%-20s %12s %12.0f %12d %+7.1f%%" "total" "" !test !tmeas terr
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (r : report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"mode\":\"%s\",\"rows\":[" (Instrument.mode_name r.mode);
  List.iteri
    (fun i row ->
      if i > 0 then add ",";
      add "{\"proc\":\"%s\",\"blocks\":%d,\"npaths\":%d,"
        (json_escape row.proc) row.blocks row.npaths;
      (match row.nfeasible with
      | Some n -> add "\"nfeasible\":%d," n
      | None -> add "\"nfeasible\":null,");
      add
        "\"probe_sites\":%d,\"added_slots\":%d,\"est_path\":%.6g,\"est_ctx\":%.6g,"
        row.probe_sites row.added_slots row.est_path row.est_ctx;
      match row.measured with
      | Some m ->
          add "\"measured\":{\"invocations\":%d,\"probes\":%d}}"
            m.invocations m.probes
      | None -> add "\"measured\":null}")
    r.rows;
  add "]}";
  Buffer.contents buf
