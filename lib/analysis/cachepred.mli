(** Ferdinand/Wilhelm-style abstract interpretation of the machine's LRU
    caches (must / may / persistence), over one cache at a time.

    The domain is deliberately ignorant of the IR: a client (see
    {!Predict}) compiles each block into an ordered list of abstract
    {!access}es — candidate cache lines resolved through {!Absint} where
    addresses are static, symbolic spaces where they are not — and this
    module folds the exact {!Pp_machine.Config} geometry over them.

    Soundness contract, certified by the [pp predict] runtime oracle:

    - {b must} maps a line to an upper bound on its LRU age; a reference
      whose every candidate line is in must with age < associativity is a
      guaranteed hit.
    - {b may} over-approximates the lines possibly resident; a reference
      none of whose candidate lines may be resident is a guaranteed miss.
      May grows monotonically (a line once touched stays possibly
      resident), so guaranteed misses are first-touches.
    - Addresses live in disjoint spaces fixed by {!Pp_ir.Layout}: globals
      and heap below the profiling segment, the profiling segment below
      the stack, code fetch-only.  A symbolic reference ([Top_prof],
      [Top_frame]) can therefore never hit a concrete data line — but its
      possible fill can evict anything, which the must transfer honours.
    - Frame slots are tracked by exact byte offset from the (unknown)
      frame base: equal offsets alias exactly; offsets a full line apart
      never share a line; everything else is approximated away.
    - Stores are write-through and non-allocating: a store never fills
      and never evicts, so it perturbs neither analysis — only its own
      hit/miss classification is consulted.

    The persistence pass upgrades a loop-body reference that cannot be
    evicted from within the loop to "at most one miss per loop entry",
    which is what proves a hot inner path all-hit after the first
    iteration. *)

module Config = Pp_machine.Config

(** Candidate target of one cache reference. *)
type target =
  | Line of int  (** exactly this line (index = addr / line_bytes) *)
  | Lines of int list  (** one of these lines; non-empty, ascending *)
  | Frame of int  (** frame slot at this byte offset from the frame base *)
  | Top_prof  (** somewhere in the profiling segment *)
  | Top_frame  (** somewhere in the stack *)
  | Top  (** anywhere *)

type access =
  | Read of target
  | Read_maybe of target
      (** a read that may or may not execute (variable-length profiling
          stubs): classified for the upper bound only, and its possible
          fill still ages the must state *)
  | Write of target
  | Havoc
      (** a call boundary: the callee may have filled or evicted
          anything ({!step} applies {!havoc}) *)

type classification = Hit | Miss | Unknown

type state

(** [entry ~cold] — procedure-entry state: [cold] means provably empty
    caches (the program entry of a never-called [main] on a fresh
    machine); otherwise nothing is known ([may] is top). *)
val entry : cold:bool -> state

(** State after a call: must is emptied, may becomes top — the callee may
    have filled or evicted anything. *)
val havoc : state -> state

val join : state -> state -> state
val equal : state -> state -> bool

val classify : Config.cache_geometry -> state -> access -> classification

(** Transfer of one access.  [step] refines ages and residency exactly as
    the LRU set the access maps to would. *)
val step : Config.cache_geometry -> state -> access -> state

val pp : Format.formatter -> state -> unit

(** {2 Per-procedure fixpoint}

    A tiny CFG-shaped solver: blocks are integers, [events i] lists block
    [i]'s accesses in program order.  Kleene iteration without widening —
    must shrinks and may grows inside finite universes (the lines named by
    the program's accesses), so the chain is finite. *)

type solution = {
  block_in : state array;
  block_out : state array;  (** after the block's last access *)
}

val solve :
  Config.cache_geometry ->
  nblocks:int ->
  entry:int ->
  succs:(int -> int list) ->
  events:(int -> access array) ->
  cold:bool ->
  solution

(** {2 Persistence}

    [persistent geom ~body_events target] — no access in the loop body
    can evict [target]'s line: every body reference either cannot map to
    the target's set or is the target itself, and nothing symbolic (call
    havoc is represented by the client as a [Read Top]) appears.  Only
    exact [Line] targets qualify. *)
val persistent :
  Config.cache_geometry -> body_events:access array list -> target -> bool
