(** Two-point taint lattice plus the per-procedure policy that designates
    which locations hold instrumentation state.

    Taint marks values derived from instrumentation-introduced state: the
    Ball–Larus path register (or its spill slot), hardware-counter reads
    and path-table cells.  {!Absint} threads taint through every transfer
    function; the non-interference client ({!Verifier.prove_proc}) then
    checks that no tainted value reaches a program-visible sink. *)

type t = Clean | Tainted

let join a b = match (a, b) with Clean, Clean -> Clean | _ -> Tainted
let equal (a : t) b = a = b
let leq a b = a = Clean || b = Tainted

let pp ppf = function
  | Clean -> Format.pp_print_string ppf "clean"
  | Tainted -> Format.pp_print_string ppf "tainted"

(** Which locations are instrumentation state.  [path_reg] / [path_slot]
    are {e always-tainted locations}: the path register is built from
    plain constants, so pure data-flow would never mark it — the policy
    does.  [fresh_slots] is the half-open byte range of frame slots the
    instrumenter allocated ([lo, hi)); stores into it are
    instrumentation-owned and not program-visible. *)
type policy = {
  path_reg : int option;
  path_slot : int option;  (** frame byte offset of a spilled path register *)
  tables : string list;  (** path/edge table globals *)
  hw_tainted : bool;  (** treat [Hwread] results as tainted *)
  fresh_slots : int * int;  (** instrumentation-owned frame bytes [lo, hi) *)
}

let none =
  {
    path_reg = None;
    path_slot = None;
    tables = [];
    hw_tainted = false;
    fresh_slots = (0, 0);
  }

let of_state (s : Pp_instrument.Instrument.state) =
  let path_reg, path_slot =
    match s.Pp_instrument.Instrument.path_home with
    | Some (Pp_instrument.Path_instr.Path_reg r) -> (Some r, None)
    | Some (Pp_instrument.Path_instr.Path_slot off) -> (None, Some off)
    | None -> (None, None)
  in
  {
    path_reg;
    path_slot;
    tables = s.Pp_instrument.Instrument.table_globals;
    hw_tainted = true;
    fresh_slots = s.Pp_instrument.Instrument.fresh_slots;
  }

let is_table p g = List.mem g p.tables
