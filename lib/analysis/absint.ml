module I = Pp_ir.Instr
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Cfg = Pp_ir.Cfg
module Loops = Pp_graph.Loops
module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Imap = Map.Make (Int)

(* Both numeric domains implement the shared signature. *)
module _ : Domain.S = Interval
module _ : Domain.S = Congruence

(* Pointer-aware abstract value: a base plus a numeric offset.  [Bnum]
   means a plain (non-pointer) integer whose value is the offset itself;
   [Bglobal g] / [Bframe] mean base-of-[g] / frame-pointer plus the
   offset; [Bany] is top (itv/cong then abstract nothing useful, and are
   kept at top). *)
type base = Bnum | Bglobal of string | Bframe | Bany

type value = {
  base : base;
  itv : Interval.t;
  cong : Congruence.t;
  taint : Taint.t;
}

let vmake ?(taint = Taint.Clean) base itv cong = { base; itv; cong; taint }

let vtop ?(taint = Taint.Clean) () =
  { base = Bany; itv = Interval.top; cong = Congruence.top; taint }

let vnum ?taint itv cong = vmake ?taint Bnum itv cong
let vconst ?taint n = vnum ?taint (Interval.const n) (Congruence.const n)

(* An unknown plain integer.  Used for values read back from program
   memory and call results; soundness of calling these non-pointers rests
   on the no-taint-escape invariant the verifier enforces at stores and on
   the VM's segment checks (a program cannot fabricate a pointer into
   instrumentation-owned state without the certifier flagging the store
   that leaked it). *)
let vunknown ?taint () = vnum ?taint Interval.top Congruence.top

let vjoin a b =
  let taint = Taint.join a.taint b.taint in
  if a.base = b.base then
    {
      base = a.base;
      itv = Interval.join a.itv b.itv;
      cong = Congruence.join a.cong b.cong;
      taint;
    }
  else vtop ~taint ()

let vwiden a b =
  let taint = Taint.join a.taint b.taint in
  if a.base = b.base then
    {
      base = a.base;
      itv = Interval.widen a.itv b.itv;
      cong = Congruence.widen a.cong b.cong;
      taint;
    }
  else vtop ~taint ()

let vequal a b =
  a.base = b.base
  && Interval.equal a.itv b.itv
  && Congruence.equal a.cong b.cong
  && Taint.equal a.taint b.taint

(* Per-program-point environment: integer registers, float-register
   taints, tracked frame slots (byte offset -> value, strong updates on
   constant offsets) and the escape hull — the range of frame offsets
   whose address may have left the procedure (stored to memory or passed
   to a call); callees may write anywhere inside it. *)
type env = {
  ivals : value array;
  ftaints : Taint.t array;
  frame : value Imap.t;
  escaped : (int * int) option;
}

let hull_join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (l1, h1), Some (l2, h2) -> Some (min l1 l2, max h1 h2)

let env_join a b =
  {
    ivals = Array.init (Array.length a.ivals) (fun i -> vjoin a.ivals.(i) b.ivals.(i));
    ftaints =
      Array.init (Array.length a.ftaints) (fun i ->
          Taint.join a.ftaints.(i) b.ftaints.(i));
    frame =
      Imap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y -> Some (vjoin x y)
          | _ -> None)
        a.frame b.frame;
    escaped = hull_join a.escaped b.escaped;
  }

let env_widen old next =
  {
    ivals =
      Array.init (Array.length old.ivals) (fun i ->
          vwiden old.ivals.(i) next.ivals.(i));
    ftaints =
      Array.init (Array.length old.ftaints) (fun i ->
          Taint.join old.ftaints.(i) next.ftaints.(i));
    frame =
      Imap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y -> Some (vwiden x y)
          | _ -> None)
        old.frame next.frame;
    escaped =
      (* the hull can otherwise grow one slot per iteration *)
      (match (old.escaped, next.escaped) with
      | None, x -> x
      | Some o, Some n when Some o = hull_join (Some o) (Some n) -> Some o
      | Some _, _ -> Some (min_int, max_int));
  }

let env_equal a b =
  Array.length a.ivals = Array.length b.ivals
  && Array.for_all2 vequal a.ivals b.ivals
  && Array.for_all2 Taint.equal a.ftaints b.ftaints
  && Imap.equal vequal a.frame b.frame
  && a.escaped = b.escaped

type config = {
  budget : int;  (** VM instruction budget the caps derive from *)
  pic_cap : int;  (** upper bound on any PIC reading *)
  cell_cap : int;  (** upper bound on any table-cell value *)
  widen_delay : int;  (** joins at a loop header before widening *)
  fuel : int;  (** joins anywhere before safety-net widening *)
  descend : int;  (** post-fixpoint narrowing passes *)
  policy : Taint.policy;
  tables : (string * int) list;  (** table global -> size in words *)
}

(* The caps are machine invariants, not analysis results: a run executes
   at most [budget] instructions, each event counter advances a bounded
   number of times per instruction (memory latencies keep it well under
   1024), and a table cell only ever accumulates counter deltas or +1
   increments.  The runtime oracle in the test suite cross-checks them
   against real executions. *)
let config ?(budget = 2_000_000_000) ?(policy = Taint.none) ?(tables = []) ()
    =
  let cap =
    if budget > max_int asr 11 then max_int asr 1 else budget * 1024
  in
  {
    budget;
    pic_cap = cap;
    cell_cap = cap;
    widen_delay = 3;
    fuel = 48;
    descend = 2;
    policy;
    tables;
  }

let table_size conf g = List.assoc_opt g conf.tables

(* ---- transfer functions ---- *)

let vbinop op a b =
  let taint = Taint.join a.taint b.taint in
  let num () =
    let itv, no_wrap = Interval.binop_report op a.itv b.itv in
    let cong = Congruence.binop ~no_wrap op a.cong b.cong in
    { base = Bnum; itv; cong; taint }
  in
  let offset base =
    let itv, no_wrap = Interval.binop_report op a.itv b.itv in
    if no_wrap then
      { base; itv; cong = Congruence.binop ~no_wrap op a.cong b.cong; taint }
    else vtop ~taint ()
  in
  match (op, a.base, b.base) with
  | _, Bany, _ | _, _, Bany -> vtop ~taint ()
  | _, Bnum, Bnum -> num ()
  | I.Add, (Bglobal _ | Bframe), Bnum -> offset a.base
  | I.Add, Bnum, (Bglobal _ | Bframe) ->
      let itv, no_wrap = Interval.binop_report op a.itv b.itv in
      if no_wrap then
        { base = b.base; itv;
          cong = Congruence.binop ~no_wrap op a.cong b.cong; taint }
      else vtop ~taint ()
  | I.Sub, (Bglobal _ | Bframe), Bnum -> offset a.base
  | I.Sub, Bglobal g1, Bglobal g2 when g1 = g2 -> offset Bnum
  | I.Sub, Bframe, Bframe -> offset Bnum
  | _ -> vtop ~taint ()

let vcmp c a b =
  let taint = Taint.join a.taint b.taint in
  match (a.base, b.base) with
  | Bnum, Bnum ->
      vmake ~taint Bnum (Interval.cmp c a.itv b.itv)
        (Congruence.cmp c a.cong b.cong)
  | _ -> vnum ~taint (Interval.make 0 1) Congruence.top

let in_fresh_slots conf itv =
  let lo, hi = conf.policy.Taint.fresh_slots in
  lo < hi && Interval.lo itv >= lo && Interval.hi itv < hi

(* Address of [rb + off] as an abstract value. *)
let address env ~base ~off = vbinop I.Add env.ivals.(base) (vconst off)

let loaded conf env ~base ~off =
  let a = address env ~base ~off in
  match a.base with
  | Bglobal g -> (
      match table_size conf g with
      | Some _ ->
          (* table cells: bounded by the machine invariant, and probe data
             through and through *)
          vnum ~taint:Taint.Tainted
            (Interval.make 0 conf.cell_cap)
            Congruence.top
      | None -> vunknown ~taint:a.taint ())
  | Bframe -> (
      match Interval.is_const a.itv with
      | Some c ->
          let v =
            Option.value (Imap.find_opt c env.frame)
              ~default:(vunknown ())
          in
          let v =
            if conf.policy.Taint.path_slot = Some c then
              { v with taint = Taint.Tainted }
            else v
          in
          { v with taint = Taint.join v.taint a.taint }
      | None ->
          let taint =
            match conf.policy.Taint.path_slot with
            | Some s when Interval.mem s a.itv -> Taint.Tainted
            | _ -> a.taint
          in
          vunknown ~taint ())
  | Bnum | Bany -> vunknown ~taint:a.taint ()

(* Mark a value's frame pointees as escaped. *)
let escape env v =
  match v.base with
  | Bframe ->
      { env with
        escaped =
          hull_join env.escaped (Some (Interval.lo v.itv, Interval.hi v.itv));
      }
  | Bany -> { env with escaped = Some (min_int, max_int) }
  | Bnum | Bglobal _ -> env

let set conf env r v =
  let v =
    if conf.policy.Taint.path_reg = Some r then
      { v with taint = Taint.Tainted }
    else v
  in
  let ivals = Array.copy env.ivals in
  ivals.(r) <- v;
  { env with ivals }

let fset env f t =
  let ftaints = Array.copy env.ftaints in
  ftaints.(f) <- t;
  { env with ftaints }

let store env ~v ~base ~off =
  let a = address env ~base ~off in
  let env = escape env v in
  match a.base with
  | Bframe -> (
      match Interval.is_const a.itv with
      | Some c -> { env with frame = Imap.add c v env.frame }
      | None ->
          let lo = Interval.lo a.itv and hi = Interval.hi a.itv in
          { env with
            frame = Imap.filter (fun k _ -> k < lo || k > hi) env.frame;
          })
  | Bany -> { env with frame = Imap.empty }
  | Bglobal _ | Bnum -> env

let call conf env ~target ~args ~ret =
  let env =
    List.fold_left (fun e r -> escape e e.ivals.(r)) env args
  in
  let env =
    match target with Some r -> escape env env.ivals.(r) | None -> env
  in
  (* the callee may write through any escaped frame pointer *)
  let env =
    match env.escaped with
    | None -> env
    | Some (lo, hi) ->
        { env with
          frame = Imap.filter (fun k _ -> k < lo || k > hi) env.frame;
        }
  in
  match (ret : I.ret_dest) with
  | I.Rint rd -> set conf env rd (vunknown ())
  | I.Rfloat fd -> fset env fd Taint.Clean
  | I.Rnone -> env

let transfer conf env (instr : I.t) =
  let get r = env.ivals.(r) in
  let ft f = env.ftaints.(f) in
  match instr with
  | I.Iconst (rd, n) -> set conf env rd (vconst n)
  | I.Iconst_sym (rd, s) ->
      set conf env rd
        (vmake (Bglobal s) (Interval.const 0) (Congruence.const 0))
  | I.Fconst (fd, _) -> fset env fd Taint.Clean
  | I.Imov (rd, rs) -> set conf env rd (get rs)
  | I.Fmov (fd, fs) -> fset env fd (ft fs)
  | I.Ibinop (op, rd, rs1, rs2) ->
      set conf env rd (vbinop op (get rs1) (get rs2))
  | I.Ibinop_imm (op, rd, rs, n) ->
      set conf env rd (vbinop op (get rs) (vconst n))
  | I.Icmp (c, rd, rs1, rs2) -> set conf env rd (vcmp c (get rs1) (get rs2))
  | I.Icmp_imm (c, rd, rs, n) ->
      set conf env rd (vcmp c (get rs) (vconst n))
  | I.Fbinop (_, fd, fs1, fs2) -> fset env fd (Taint.join (ft fs1) (ft fs2))
  | I.Fcmp (_, rd, fs1, fs2) ->
      set conf env rd
        (vnum
           ~taint:(Taint.join (ft fs1) (ft fs2))
           (Interval.make 0 1) Congruence.top)
  | I.Itof (fd, rs) -> fset env fd (get rs).taint
  | I.Ftoi (rd, fs) -> set conf env rd (vunknown ~taint:(ft fs) ())
  | I.Load (rd, rb, off) -> set conf env rd (loaded conf env ~base:rb ~off)
  | I.Fload (fd, rb, off) ->
      fset env fd (loaded conf env ~base:rb ~off).taint
  | I.Store (rs, rb, off) -> store env ~v:(get rs) ~base:rb ~off
  | I.Fstore (fs, rb, off) ->
      store env ~v:(vunknown ~taint:(ft fs) ()) ~base:rb ~off
  | I.Call { args; ret; _ } -> call conf env ~target:None ~args ~ret
  | I.Callind { target; args; ret; _ } ->
      call conf env ~target:(Some target) ~args ~ret
  | I.Hwread (rd, _) ->
      let taint =
        if conf.policy.Taint.hw_tainted then Taint.Tainted else Taint.Clean
      in
      set conf env rd
        (vnum ~taint (Interval.make 0 conf.pic_cap) Congruence.top)
  | I.Frameaddr (rd, off) ->
      set conf env rd
        (vmake Bframe (Interval.const off) (Congruence.const off))
  | I.Hwzero | I.Hwwrite _ | I.Print_int _ | I.Print_float _ | I.Prof _ ->
      env

(* ---- fixpoint ---- *)

type t = {
  cfg : Cfg.t;
  conf : config;
  entries : env option array;
}

let entry0 conf (p : Proc.t) =
  let ivals =
    Array.init p.Proc.niregs (fun r ->
        if r < p.Proc.iparams then vunknown () else vconst 0)
  in
  let ivals =
    (* per-activation registers are zero-initialised; the path home is
       tainted from the very first state *)
    match conf.policy.Taint.path_reg with
    | Some r when r < Array.length ivals ->
        ivals.(r) <- { (ivals.(r)) with taint = Taint.Tainted };
        ivals
    | _ -> ivals
  in
  {
    ivals;
    ftaints = Array.make p.Proc.nfregs Taint.Clean;
    frame = Imap.empty;
    escaped = None;
  }

let exec_block conf env (b : Block.t) =
  List.fold_left (transfer conf) env b.Block.instrs

let succ_labels (b : Block.t) = Block.successors b

let analyze ?conf (cfg : Cfg.t) =
  let conf = match conf with Some c -> c | None -> config () in
  let p = cfg.Cfg.proc in
  let n = Array.length p.Proc.blocks in
  let loops = Loops.analyze cfg.Cfg.graph ~root:cfg.Cfg.entry in
  let entries = Array.make n None in
  let joins = Array.make n 0 in
  let on_queue = Array.make n false in
  let queue = Queue.create () in
  let enqueue l =
    if not on_queue.(l) then (
      on_queue.(l) <- true;
      Queue.add l queue)
  in
  let push l env =
    match entries.(l) with
    | None ->
        entries.(l) <- Some env;
        enqueue l
    | Some old ->
        joins.(l) <- joins.(l) + 1;
        let widen_now =
          (Loops.is_header loops l && joins.(l) > conf.widen_delay)
          || joins.(l) > conf.fuel
        in
        let next =
          if widen_now then env_widen old (env_join old env)
          else env_join old env
        in
        if not (env_equal old next) then (
          entries.(l) <- Some next;
          enqueue l)
  in
  push p.Proc.entry (entry0 conf p);
  while not (Queue.is_empty queue) do
    let l = Queue.take queue in
    on_queue.(l) <- false;
    match entries.(l) with
    | None -> ()
    | Some env ->
        let b = p.Proc.blocks.(l) in
        let out = exec_block conf env b in
        List.iter (fun l' -> push l' out) (succ_labels b)
  done;
  (* Descending passes recover precision lost to widening: applying the
     (monotone, sound) transfer to any over-approximation of the least
     fixpoint yields another over-approximation, so a bounded number of
     re-evaluations is sound without reaching a fixpoint.  Gauss-Seidel in
     reverse postorder — each block's predecessors are re-executed against
     the entries already narrowed this pass, so recovery crosses a whole
     forward chain per pass instead of one edge per pass (backedges still
     need one pass each, hence [conf.descend] > 1). *)
  let rpo =
    Dfs.reverse_postorder (Dfs.run cfg.Cfg.graph ~root:cfg.Cfg.entry)
    |> List.filter_map (Cfg.label_of_vertex cfg)
  in
  for _ = 1 to conf.descend do
    List.iter
      (fun l ->
        if entries.(l) <> None then begin
          let incoming =
            ref (if l = p.Proc.entry then [ entry0 conf p ] else [])
          in
          List.iter
            (fun (e : Digraph.edge) ->
              match Cfg.label_of_vertex cfg e.Digraph.src with
              | Some src -> (
                  match entries.(src) with
                  | Some env ->
                      incoming :=
                        exec_block conf env p.Proc.blocks.(src) :: !incoming
                  | None -> ())
              | None -> ())
            (Digraph.in_edges cfg.Cfg.graph l);
          match !incoming with
          | [] -> ()
          | e :: es -> entries.(l) <- Some (List.fold_left env_join e es)
        end)
      rpo
  done;
  { cfg; conf; entries }

(* ---- client access ---- *)

let conf t = t.conf
let reached t l = t.entries.(l) <> None
let entry_env t l = t.entries.(l)

let ireg env r = env.ivals.(r)
let ftaint env f = env.ftaints.(f)

(* Replay a reached block: [f] sees the environment in force immediately
   before each instruction.  Returns the environment before the
   terminator; [None] when the block is unreached. *)
let iter_block t l f =
  match t.entries.(l) with
  | None -> None
  | Some env ->
      let b = t.cfg.Cfg.proc.Proc.blocks.(l) in
      let _, env =
        List.fold_left
          (fun (pos, env) instr ->
            f ~pos env instr;
            (pos + 1, transfer t.conf env instr))
          (0, env) b.Block.instrs
      in
      Some env

let term_env t l = iter_block t l (fun ~pos:_ _ _ -> ())

(* Concretization membership for the runtime oracle: does machine value
   [x] (with the activation's frame pointer [frame] and a resolver for
   global base addresses) lie inside the abstract value?  Unresolvable
   components answer [true] — the oracle only reports definite
   violations. *)
let admits ~global_base ~frame v x =
  let num_ok itv cong n =
    Interval.mem n itv && Congruence.leq (Congruence.const n) cong
  in
  match v.base with
  | Bany -> true
  | Bnum -> num_ok v.itv v.cong x
  | Bframe -> num_ok v.itv v.cong (x - frame)
  | Bglobal g -> (
      match global_base g with
      | Some b -> num_ok v.itv v.cong (x - b)
      | None -> true)

let pp_value ppf v =
  let pb ppf = function
    | Bnum -> ()
    | Bglobal g -> Format.fprintf ppf "&%s+" g
    | Bframe -> Format.fprintf ppf "fp+"
    | Bany -> Format.fprintf ppf "any "
  in
  Format.fprintf ppf "%a%a %a %a" pb v.base Interval.pp v.itv Congruence.pp
    v.cong Taint.pp v.taint
