(** Static per-path hardware-metric prediction.

    For every Ball–Larus path of every procedure, composes the
    {!Cachepred} must/may/persistence classifications with the machine's
    certified stall bounds ({!Pp_machine.Model}) into an interval
    [[lo, hi]] on what one {e measured window} of that path may add to
    each hardware counter — cycles, combined D-cache misses, I-cache
    misses and stall cycles.

    The window semantics mirror the [pp predict] measurement oracle
    exactly (see {!Pp_run.Predict_run}): a path's window opens at the
    probe of its first block and closes at the probe that opens the next
    one.  Three consequences shape the bounds:

    - a call suspends the window — events from the call instruction's
      successor to the end of that block belong to the {e callee}'s
      final (To_exit) window, so they are excluded here and accounted to
      the callee as a "tail" ({!tail_bound}): the worst caller-side
      segment that can run between a procedure's return and the next
      probe, chased transitively through returns (infinite on recursive
      return chains, which yields VACUOUS verdicts rather than unsound
      ones);
    - profiling stubs with data-dependent cost (the CCT enter walk)
      contribute ranges, unbounded when the call graph is cyclic;
    - an [After_backedge] path starts from the abstract cache state
      propagated along its backedge, which is what lets a hot inner
      path classify all-hit; references only {e persistence} saves are
      reported separately ([*_once]) — at most one miss per entry of the
      enclosing loop, a bound the report layer multiplies by the
      observed loop-entry count. *)

module Config = Pp_machine.Config
module Ball_larus = Pp_core.Ball_larus

(** [None] = unbounded. *)
type itv = { lo : int; hi : int option }

type metrics = { cycles : itv; dmiss : itv; imiss : itv; stalls : itv }

(** Worst caller-side work attributable to one To_exit window of a
    procedure, per metric ([None] = unbounded). *)
type tail = {
  t_cycles : int option;
  t_dmiss : int option;
  t_imiss : int option;
  t_stalls : int option;
}

type exec_bounds = {
  per_exec : metrics;  (** certified interval for one window *)
  dmiss_once : int;
      (** persistent D-lines read on the path: at most this many extra
          misses per entry of the enclosing loop, on top of [per_exec] *)
  imiss_once : int;
  cycles_once : int;  (** penalty cycles of those once-only misses *)
  header : Pp_ir.Block.label option;
      (** loop header the [*_once] bounds are charged against *)
  to_exit : bool;  (** sink is [To_exit]: add the procedure's tail *)
}

type t

(** Build the whole-program prediction context.  [config] is the
    {e modelled} machine (default {!Config.default}); [pp predict
    --inject] runs the execution on a different geometry to prove the
    oracle can catch a wrong model.  Procedures whose CFG the Ball–Larus
    numbering rejects are skipped ({!numbering} returns [None]). *)
val create :
  ?config:Config.t ->
  original:Pp_ir.Program.t ->
  instrumented:Pp_ir.Program.t ->
  unit ->
  t

val config : t -> Config.t

(** The numbering predictions are keyed by — built on the {e original}
    CFG, identical to the instrumenter's. *)
val numbering : t -> string -> Ball_larus.t option

(** Feasibility analysis of the original CFG (for marking unexecuted
    paths in reports); [None] for procedures without a numbering. *)
val feasibility : t -> string -> Feasibility.t option

val tail_bound : t -> string -> tail

(** Certified bounds for one execution of path [sum] of [proc].
    Memoised; walking is linear in the path's instruction count.
    @raise Invalid_argument on an unknown procedure or sum. *)
val predict : t -> proc:string -> sum:int -> exec_bounds

(** All procedure names with a numbering, sorted. *)
val procs : t -> string list
