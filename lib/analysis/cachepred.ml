module Config = Pp_machine.Config
module Model = Pp_machine.Model
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type target =
  | Line of int
  | Lines of int list
  | Frame of int
  | Top_prof
  | Top_frame
  | Top

type access =
  | Read of target
  | Read_maybe of target
  | Write of target
  | Havoc
type classification = Hit | Miss | Unknown

type may = {
  abs : ISet.t;  (* concrete lines possibly resident *)
  fr : ISet.t;  (* frame byte offsets whose line is possibly resident *)
  prof : bool;  (* some profiling-segment line possibly resident *)
  frtop : bool;  (* some stack line at an unknown offset possibly resident *)
  top : bool;
}

type state = {
  m_abs : int IMap.t;  (* line -> LRU age upper bound, < associativity *)
  m_fr : int IMap.t;  (* frame byte offset -> age upper bound *)
  may : may;
}

let may_bot = { abs = ISet.empty; fr = ISet.empty; prof = false; frtop = false; top = false }

let entry ~cold =
  {
    m_abs = IMap.empty;
    m_fr = IMap.empty;
    may = (if cold then may_bot else { may_bot with top = true });
  }

let havoc s =
  { m_abs = IMap.empty; m_fr = IMap.empty; may = { s.may with top = true } }

let join a b =
  let meet_ages m1 m2 =
    IMap.merge
      (fun _ x y ->
        match (x, y) with Some x, Some y -> Some (max x y) | _ -> None)
      m1 m2
  in
  {
    m_abs = meet_ages a.m_abs b.m_abs;
    m_fr = meet_ages a.m_fr b.m_fr;
    may =
      {
        abs = ISet.union a.may.abs b.may.abs;
        fr = ISet.union a.may.fr b.may.fr;
        prof = a.may.prof || b.may.prof;
        frtop = a.may.frtop || b.may.frtop;
        top = a.may.top || b.may.top;
      };
  }

let equal a b =
  IMap.equal ( = ) a.m_abs b.m_abs
  && IMap.equal ( = ) a.m_fr b.m_fr
  && ISet.equal a.may.abs b.may.abs
  && ISet.equal a.may.fr b.may.fr
  && a.may.prof = b.may.prof
  && a.may.frtop = b.may.frtop
  && a.may.top = b.may.top

(* Two offsets from the same (unknown, word-aligned) frame base share a
   cache line only when they are less than a line apart: the address
   difference equals the offset difference, and a full line of distance
   always crosses a line boundary. *)
let fr_same_line geom o o' = abs (o - o') < geom.Config.line_bytes

(* ... and they can map to the same set only when their line distance is
   zero or wraps the whole set space. *)
let fr_same_set_possible geom o o' =
  let d = abs (o - o') in
  let lb = geom.Config.line_bytes in
  d < lb || d >= (Model.num_sets geom - 1) * lb

let must_hit s = function
  | Line l -> IMap.mem l s.m_abs
  | Lines ls -> ls <> [] && List.for_all (fun l -> IMap.mem l s.m_abs) ls
  | Frame o -> IMap.mem o s.m_fr
  | Top_prof | Top_frame | Top -> false

(* Over-approximate "could this reference hit?".  Address spaces are
   disjoint (Layout): concrete [Line]s name data/heap/code addresses and
   can never equal a profiling-segment or stack line, so the [prof] and
   [frtop] flags are consulted only by symbolic targets. *)
let may_hit geom s = function
  | Line l -> s.may.top || ISet.mem l s.may.abs
  | Lines ls -> s.may.top || List.exists (fun l -> ISet.mem l s.may.abs) ls
  | Frame o ->
      s.may.top || s.may.frtop
      || ISet.exists (fun o' -> fr_same_line geom o o') s.may.fr
  | Top_prof -> s.may.top || s.may.prof
  | Top_frame -> s.may.top || s.may.frtop || not (ISet.is_empty s.may.fr)
  | Top ->
      s.may.top || s.may.prof || s.may.frtop
      || (not (ISet.is_empty s.may.abs))
      || not (ISet.is_empty s.may.fr)

let classify geom s access =
  match access with
  | Havoc -> Unknown
  | Read t | Read_maybe t | Write t ->
      if must_hit s t then Hit
      else if not (may_hit geom s t) then Miss
      else Unknown

(* Set indices a target can map to; [None] = unknown (any set). *)
let target_sets geom = function
  | Line l -> Some (ISet.singleton (Model.set_of_line geom l))
  | Lines ls ->
      Some
        (List.fold_left
           (fun s l -> ISet.add (Model.set_of_line geom l) s)
           ISet.empty ls)
  | Frame _ | Top_prof | Top_frame | Top -> None

let abs_affected geom sets l =
  match sets with
  | None -> true
  | Some ss -> ISet.mem (Model.set_of_line geom l) ss

let fr_affected geom tgt o' =
  match tgt with
  | Frame o -> fr_same_set_possible geom o o'
  | Line _ | Lines _ | Top_prof | Top_frame | Top -> true

(* Age every entry that shares a set with the access (except the exactly
   named target, which the caller re-inserts or promotes).  [evict]
   distinguishes a possible fill (ages can cross associativity and the
   entry leaves must) from a pure promotion (capped: no line entered the
   set, so true ages stay below associativity). *)
let age_affected geom s tgt ~evict =
  let aw = geom.Config.associativity in
  let sets = target_sets geom tgt in
  let keep_exact_line l =
    match tgt with Line l' -> l = l' | _ -> false
  in
  let keep_exact_fr o = match tgt with Frame o' -> o = o' | _ -> false in
  let bump age = if evict then age + 1 else min (age + 1) (aw - 1) in
  let m_abs =
    IMap.filter_map
      (fun l age ->
        if keep_exact_line l || not (abs_affected geom sets l) then Some age
        else
          let age = bump age in
          if age >= aw then None else Some age)
      s.m_abs
  in
  let m_fr =
    IMap.filter_map
      (fun o age ->
        if keep_exact_fr o || not (fr_affected geom tgt o) then Some age
        else
          let age = bump age in
          if age >= aw then None else Some age)
      s.m_fr
  in
  { s with m_abs; m_fr }

let may_add tgt may =
  match tgt with
  | Line l -> { may with abs = ISet.add l may.abs }
  | Lines ls -> { may with abs = List.fold_left (Fun.flip ISet.add) may.abs ls }
  | Frame o -> { may with fr = ISet.add o may.fr }
  | Top_prof -> { may with prof = true }
  | Top_frame -> { may with frtop = true }
  | Top -> { may with top = true }

let step geom s access =
  match access with
  | Havoc -> havoc s
  | Write tgt ->
      (* Non-allocating write-through: no fill, no eviction, no new
         residency.  A write hit can still promote its line, ageing the
         rest of the set (capped — nothing entered). *)
      let s = age_affected geom s tgt ~evict:false in
      (match tgt with
      | Frame o when IMap.mem o s.m_fr ->
          { s with m_fr = IMap.add o 0 s.m_fr }
      | Line l when IMap.mem l s.m_abs ->
          { s with m_abs = IMap.add l 0 s.m_abs }
      | _ -> s)
  | Read tgt ->
      let hit = must_hit s tgt in
      let s = age_affected geom s tgt ~evict:(not hit) in
      (* After a read the referenced line is resident (hit or fill), so an
         exactly named target enters must at age 0. *)
      let s =
        match tgt with
        | Line l -> { s with m_abs = IMap.add l 0 s.m_abs }
        | Frame o -> { s with m_fr = IMap.add o 0 s.m_fr }
        | Lines _ | Top_prof | Top_frame | Top -> s
      in
      { s with may = may_add tgt s.may }
  | Read_maybe tgt ->
      (* May or may not execute: its possible fill ages neighbours, but
         nothing becomes guaranteed-resident. *)
      let s = age_affected geom s tgt ~evict:true in
      { s with may = may_add tgt s.may }

let pp ppf s =
  let ages m = IMap.fold (fun k v acc -> (k, v) :: acc) m [] |> List.rev in
  Format.fprintf ppf "@[<v>must-lines: %a@,must-frame: %a@,may: %d lines, %d slots%s%s%s@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (l, a) -> Format.fprintf ppf "%d@%d" l a))
    (ages s.m_abs)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (o, a) -> Format.fprintf ppf "+%d@%d" o a))
    (ages s.m_fr) (ISet.cardinal s.may.abs) (ISet.cardinal s.may.fr)
    (if s.may.prof then " prof" else "")
    (if s.may.frtop then " frtop" else "")
    (if s.may.top then " top" else "")

type solution = { block_in : state array; block_out : state array }

let solve geom ~nblocks ~entry:entry_block ~succs ~events ~cold =
  let unknown = entry ~cold:false in
  let ins : state option array = Array.make nblocks None in
  let transfer st evs = Array.fold_left (step geom) st evs in
  ins.(entry_block) <- Some (entry ~cold);
  let queue = Queue.create () in
  let queued = Array.make nblocks false in
  let enqueue b =
    if not queued.(b) then begin
      queued.(b) <- true;
      Queue.add b queue
    end
  in
  enqueue entry_block;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    queued.(b) <- false;
    match ins.(b) with
    | None -> ()
    | Some st ->
        let out = transfer st (events b) in
        List.iter
          (fun s ->
            if s >= 0 && s < nblocks then begin
              let merged =
                match ins.(s) with None -> out | Some old -> join old out
              in
              match ins.(s) with
              | Some old when equal old merged -> ()
              | _ ->
                  ins.(s) <- Some merged;
                  enqueue s
            end)
          (succs b)
  done;
  let block_in =
    Array.init nblocks (fun b ->
        match ins.(b) with Some st -> st | None -> unknown)
  in
  let block_out =
    Array.init nblocks (fun b -> transfer block_in.(b) (events b))
  in
  { block_in; block_out }

let persistent geom ~body_events target =
  match target with
  | Line l ->
      let sl = Model.set_of_line geom l in
      let benign = function
        | Havoc -> false
        | Write _ -> true (* stores never evict *)
        | Read t | Read_maybe t -> (
            match t with
            | Line l' -> l' = l || Model.set_of_line geom l' <> sl
            | Lines ls ->
                List.for_all
                  (fun l' -> l' = l || Model.set_of_line geom l' <> sl)
                  ls
            | Frame _ | Top_prof | Top_frame | Top -> false)
      in
      List.for_all (fun evs -> Array.for_all benign evs) body_events
  | Lines _ | Frame _ | Top_prof | Top_frame | Top -> false
