(* Static execution-frequency estimation, after Wu & Larus (MICRO'94) and
   the Ball–Larus branch heuristics, simplified to the two signals that
   matter for probe-cost prediction in this codebase:

   - loop-branch heuristic: a natural backedge is taken ~7x as often as a
     loop exit (weight x7);
   - guard heuristic: a branch arm whose target post-dominates the branch
     is the "normal" continuation (weight x3);
   - feasibility: an edge {!Constprop} proved never-executable gets
     probability zero outright.

   Edge weights normalize into branch probabilities; block frequencies
   propagate acyclically in reverse postorder (backedges dropped, their
   probability mass renormalized away) starting from ENTRY = 1.0, then
   scale by 8^depth per loop-nesting level — the same 8x-per-level
   convention {!Pp_core.Static_weights} uses for placement weights, so the
   two estimators agree on what "hot" means. *)

module Cfg = Pp_ir.Cfg
module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Dominators = Pp_graph.Dominators
module Loops = Pp_graph.Loops

type t = {
  cfg : Cfg.t;
  loops : Loops.t;
  prob : float array;  (* per edge id: branch probability out of src *)
  vfreq : float array;  (* per vertex: estimated executions per invocation *)
}

let backedge_factor = 7.0
let postdom_factor = 3.0
let loop_scale = 8.0
let max_depth = 7

let estimate ?cp (cfg : Cfg.t) =
  let g = cfg.Cfg.graph in
  let n = Digraph.num_vertices g in
  let dfs = Dfs.run g ~root:cfg.Cfg.entry in
  let is_backedge = Array.make (Digraph.num_edges g) false in
  List.iter
    (fun (e : Digraph.edge) -> is_backedge.(e.id) <- true)
    (Dfs.back_edges dfs);
  let loops = Loops.analyze g ~root:cfg.Cfg.entry in
  let pdom = Dominators.compute_post g ~exit:cfg.Cfg.exit in
  let executable (e : Digraph.edge) =
    match cp with
    | None -> true
    | Some cp -> Constprop.edge_executable cp e
  in
  (* Raw heuristic weight of an out-edge. *)
  let weight (e : Digraph.edge) =
    if not (executable e) then 0.0
    else begin
      let w = ref 1.0 in
      if is_backedge.(e.id) then w := !w *. backedge_factor
      else if Dominators.dominates pdom e.dst e.src then
        w := !w *. postdom_factor;
      !w
    end
  in
  (* Normalize into probabilities per source vertex. *)
  let prob = Array.make (Digraph.num_edges g) 0.0 in
  Digraph.iter_vertices
    (fun v ->
      let outs = Digraph.out_edges g v in
      let total = List.fold_left (fun acc e -> acc +. weight e) 0.0 outs in
      List.iter
        (fun (e : Digraph.edge) ->
          prob.(e.id) <- (if total > 0.0 then weight e /. total else 0.0))
        outs)
    g;
  (* Acyclic propagation: reverse postorder is a topological order of the
     graph minus its DFS backedges.  Backedge mass is renormalized away so
     that each iteration level carries full weight; looping is reintroduced
     below via the 8^depth scale. *)
  let lfreq = Array.make n 0.0 in
  lfreq.(cfg.Cfg.entry) <- 1.0;
  List.iter
    (fun v ->
      if v <> cfg.Cfg.entry then begin
        let ins =
          List.filter
            (fun (e : Digraph.edge) -> not is_backedge.(e.id))
            (Digraph.in_edges g v)
        in
        let acc = ref 0.0 in
        List.iter
          (fun (e : Digraph.edge) ->
            let outs = Digraph.out_edges g e.src in
            let acyclic_total =
              List.fold_left
                (fun t (o : Digraph.edge) ->
                  if is_backedge.(o.id) then t else t +. (prob.(o.id)))
                0.0 outs
            in
            let p =
              if acyclic_total > 0.0 then prob.(e.id) /. acyclic_total
              else 0.0
            in
            acc := !acc +. (lfreq.(e.src) *. p))
          ins;
        lfreq.(v) <- !acc
      end)
    (Dfs.reverse_postorder dfs);
  let vfreq =
    Array.init n (fun v ->
        let d = min (Loops.depth loops v) max_depth in
        lfreq.(v) *. (loop_scale ** float_of_int d))
  in
  { cfg; loops; prob; vfreq }

let vertex_freq t v = t.vfreq.(v)
let block_freq t l = t.vfreq.(Cfg.vertex_of_label t.cfg l)
let edge_prob t (e : Digraph.edge) = t.prob.(e.id)
let edge_freq t (e : Digraph.edge) = t.vfreq.(e.src) *. t.prob.(e.id)
let loop_depth t v = Loops.depth t.loops v
let loops t = t.loops
