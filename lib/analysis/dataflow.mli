(** A generic worklist dataflow engine over {!Pp_ir.Cfg}.

    The engine propagates lattice values over the CFG's vertices (block
    labels plus the synthetic ENTRY and EXIT), joining at control-flow
    merges and iterating to a fixpoint.  Two interfaces are provided:

    - {!Make}, parameterised by an arbitrary join-semilattice and a
      per-block transfer function (plus an optional per-edge transfer —
      the instrumentation verifier uses this to charge Ball–Larus edge
      values to edges rather than blocks);
    - {!Gen_kill}, the classic bitvector specialisation (liveness,
      reaching definitions, …) expressed with per-block gen/kill sets and
      a union or intersection confluence operator.

    Unreachable vertices stay at bottom, represented as [None] in query
    results — no bottom element is required of the lattice. *)

module Digraph = Pp_graph.Digraph

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (L : LATTICE) : sig
  type result

  (** [solve ~direction cfg ~init ~transfer] runs to fixpoint.

      Forward: the value flowing into the entry side is [init]; a block's
      input is the join over its predecessors' outputs (each passed
      through [edge_transfer] for the connecting edge); its output is
      [transfer label input].  Backward: symmetric, starting from EXIT
      with [init], joining over successors.

      [transfer] is only applied to real blocks; ENTRY and EXIT pass
      values through unchanged. *)
  val solve :
    ?edge_transfer:(Digraph.edge -> L.t -> L.t) ->
    direction:direction ->
    Pp_ir.Cfg.t ->
    init:L.t ->
    transfer:(Pp_ir.Block.label -> L.t -> L.t) ->
    result

  (** Value at the program point before the block (forward: its input;
      backward: its output).  [None] when the block is unreachable. *)
  val before : result -> Pp_ir.Block.label -> L.t option

  (** Value at the program point after the block. *)
  val after : result -> Pp_ir.Block.label -> L.t option

  (** The value that reached the far end (EXIT for forward, ENTRY for
      backward). *)
  val final : result -> L.t option

  (** Number of transfer-function applications performed (a measure of
      worklist iteration; tests use it to bound convergence). *)
  val steps : result -> int
end

(** Dense bitvector sets over a universe [0 .. size-1]. *)
module Bitset : sig
  type t

  val create : int -> t  (** all bits clear *)

  val full : int -> t
  val copy : t -> t
  val size : t -> int
  val add : t -> int -> unit
  val remove : t -> int -> unit
  val mem : t -> int -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val equal : t -> t -> bool
  val is_empty : t -> bool
  val elements : t -> int list
  val iter : (int -> unit) -> t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Gen/kill bitvector problems: [out = gen ∪ (in \ kill)]. *)
module Gen_kill : sig
  type confluence = Union | Intersection

  type result

  (** [solve ~direction ~confluence cfg ~universe ~gen ~kill ~init] — [gen]
      and [kill] give each block's sets over [0 .. universe-1]; [init]
      is the boundary value (at ENTRY for forward, EXIT for backward).
      With [Intersection] confluence, unreachable predecessors are ignored
      rather than treated as the full set. *)
  val solve :
    direction:direction ->
    confluence:confluence ->
    Pp_ir.Cfg.t ->
    universe:int ->
    gen:(Pp_ir.Block.label -> Bitset.t) ->
    kill:(Pp_ir.Block.label -> Bitset.t) ->
    init:Bitset.t ->
    result

  val before : result -> Pp_ir.Block.label -> Bitset.t option
  val after : result -> Pp_ir.Block.label -> Bitset.t option
  val final : result -> Bitset.t option
end
