module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module I = Pp_ir.Instr
module Diag = Pp_ir.Diag
module Bitset = Dataflow.Bitset
module Gen_kill = Dataflow.Gen_kill

type t = { cfg : Cfg.t; regs : Regs.t; result : Gen_kill.result }

let block_sets regs universe (b : Block.t) =
  let gen = Bitset.create universe in
  let kill = Bitset.create universe in
  List.iter
    (fun instr ->
      List.iter
        (fun u -> if not (Bitset.mem kill u) then Bitset.add gen u)
        (Regs.uses regs instr);
      List.iter (Bitset.add kill) (Regs.defs regs instr))
    b.Block.instrs;
  List.iter
    (fun u -> if not (Bitset.mem kill u) then Bitset.add gen u)
    (Regs.term_uses regs b.Block.term);
  (gen, kill)

let compute (cfg : Cfg.t) =
  let p = cfg.Cfg.proc in
  let regs = Regs.of_proc p in
  let universe = Regs.universe regs in
  let sets = Array.map (block_sets regs universe) p.Pp_ir.Proc.blocks in
  let result =
    Gen_kill.solve ~direction:Dataflow.Backward ~confluence:Gen_kill.Union cfg
      ~universe
      ~gen:(fun l -> fst sets.(l))
      ~kill:(fun l -> snd sets.(l))
      ~init:(Bitset.create universe)
  in
  { cfg; regs; result }

let live_in t label = Gen_kill.before t.result label
let live_out t label = Gen_kill.after t.result label
let reg_name t id = Regs.name t.regs id

(* An instruction whose only observable effect is its register result.
   Division can trap, loads can fault, everything else with a side effect
   (stores, calls, prints, profiling ops, counter accesses) is kept even if
   its result dies. *)
let pure = function
  | I.Iconst _ | I.Iconst_sym _ | I.Fconst _ | I.Imov _ | I.Fmov _ | I.Icmp _
  | I.Icmp_imm _ | I.Fbinop _ | I.Fcmp _ | I.Itof _ | I.Ftoi _ | I.Frameaddr _
    ->
      true
  | I.Ibinop (op, _, _, _) -> ( match op with I.Div | I.Rem -> false | _ -> true)
  | I.Ibinop_imm (op, _, _, imm) -> (
      match op with I.Div | I.Rem -> imm <> 0 | _ -> true)
  | _ -> false

(* [int x;] lowers to an explicit zero initialiser; flagging those as dead
   stores would bury real findings, so they are skipped unless asked for. *)
let trivial_init = function
  | I.Iconst (_, 0) | I.Fconst (_, 0.0) -> true
  | _ -> false

let dead_stores ?(flag_zero_init = false) t =
  let p = t.cfg.Cfg.proc in
  let diags = ref [] in
  Array.iter
    (fun (b : Block.t) ->
      match live_out t b.Block.label with
      | None -> () (* unreachable: reported separately *)
      | Some out ->
          let live = Bitset.copy out in
          List.iter (Bitset.add live) (Regs.term_uses t.regs b.Block.term);
          let instrs = Array.of_list b.Block.instrs in
          for i = Array.length instrs - 1 downto 0 do
            let instr = instrs.(i) in
            let defs = Regs.defs t.regs instr in
            let dead =
              defs <> []
              && List.for_all (fun d -> not (Bitset.mem live d)) defs
            in
            if
              dead && pure instr
              && (flag_zero_init || not (trivial_init instr))
            then
              diags :=
                Diag.warning
                  (Diag.instr_loc p.Pp_ir.Proc.name b.Block.label i)
                  "dead store: %s is never read"
                  (String.concat ", " (List.map (Regs.name t.regs) defs))
                :: !diags;
            List.iter (Bitset.remove live) defs;
            List.iter (Bitset.add live) (Regs.uses t.regs instr)
          done)
    p.Pp_ir.Proc.blocks;
  List.rev !diags

(* A parameter whose incoming value is never read is not live into the
   entry block: every path either redefines it first or never touches
   it. *)
let unused_params t =
  let p = t.cfg.Cfg.proc in
  match live_in t p.Pp_ir.Proc.entry with
  | None -> []
  | Some live ->
      List.filter_map
        (fun id ->
          if Bitset.mem live id then None
          else
            Some
              (Diag.warning
                 (Diag.proc_loc p.Pp_ir.Proc.name)
                 "unused parameter: %s is never read"
                 (Regs.name t.regs id)))
        (Regs.params t.regs p)
