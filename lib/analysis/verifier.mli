(** Static verification of instrumented code — the [pp check] engine.

    Given an original program, its instrumented counterpart, and the
    instrumentation manifest, the verifier proves four properties without
    running the program:

    - {b Path-sum soundness}: along every acyclic ENTRY→EXIT path of the
      Ball–Larus DAG, the path register as actually incremented by the
      emitted code evaluates to exactly the Ball–Larus path encoding.  The
      proof device is a linear forward dataflow of the difference
      [d(v) = P(v) − ValSum(v)], which correct instrumentation keeps
      per-vertex constant (0 for the simple placement, [−θ(v)] for a chord
      placement with tree potentials θ); a disagreement at a join or a
      failed commit equation pinpoints the defect.  Exact — no path
      enumeration, sound and complete over the acyclic DAG.
    - {b Commit coverage}: exactly one counter commit on every return
      block and every backedge, none in path interiors.
    - {b PIC discipline} (flow-hw): counters saved at entry before
      zeroing, accumulated and re-zeroed at backedge commits, restored
      after the final commit on every return — or the caller-saves
      variant bracketing each call site (ablation A3).
    - {b Flow conservation} (edge-freq): counters sit exactly on the
      plan's chords and the uninstrumented edges form a spanning tree, so
      Kirchhoff's equations reconstruct every edge count uniquely.

    All findings are {!Pp_ir.Diag} errors with block/instruction
    locations.  An empty list means the instrumentation is correct. *)

val verify_proc :
  mode:Pp_instrument.Instrument.mode ->
  options:Pp_instrument.Instrument.options ->
  original:Pp_ir.Proc.t ->
  instrumented:Pp_ir.Proc.t ->
  info:Pp_instrument.Instrument.proc_info ->
  Pp_ir.Diag.t list

(** Verify every procedure pair plus the counter-table globals. *)
val verify_program :
  original:Pp_ir.Program.t ->
  manifest:Pp_instrument.Instrument.manifest ->
  Pp_ir.Program.t ->
  Pp_ir.Diag.t list

(** {2 Abstract-interpretation certification — the [pp prove] engine}

    Runs {!Absint} over every instrumented procedure and checks two
    properties on top of what {!verify_program} proves:

    - {b Bounds}: every counter-table access is 8-byte aligned and inside
      the table, every stored counter is provably within [0, 2^61] (far
      from 63-bit wraparound), and every hash/CCT commit key is within
      [0, num_paths) — for pruned numberings too, whose probe constants
      are unchanged.
    - {b Non-interference}: instrumentation-introduced state (the path
      register or its spill slot, PIC readings, counter-table cells and
      table addresses) never flows into a program-visible register,
      memory word, output, call argument, branch condition or return
      value; additionally the original program never references a
      counter-table global.

    [budget] is the VM instruction budget from which the PIC and
    table-cell caps derive (see {!Absint.config}).  An empty list means
    both properties are certified. *)
val prove_program :
  ?budget:int ->
  original:Pp_ir.Program.t ->
  manifest:Pp_instrument.Instrument.manifest ->
  Pp_ir.Program.t ->
  Pp_ir.Diag.t list
