(* Static verification of instrumented procedures.

   The central device is a forward dataflow over the instrumented CFG of
   the quantity  d(v) = P(v) - E(v),  where P(v) is the path register's
   value on entry to v and E(v) the Ball-Larus Val sum of the original
   edges crossed so far.  For correct instrumentation d is a per-vertex
   constant: 0 everywhere under the simple placement, -theta(v) under a
   chord placement over a spanning tree with potentials theta.  The walk
   therefore needs no knowledge of which placement was used: it checks
   that d is consistent at every join and that each commit's key equals
   the full path encoding, i.e.  d + key_off = Val(final edge).  Both
   checks together are sound and complete for path-sum correctness over
   the (acyclic) instrumented DAG: any disagreement means some real path
   commits a wrong path number, and any wrong path number shows up as a
   disagreement or a failed commit equation. *)

module I = Pp_ir.Instr
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program
module Cfg = Pp_ir.Cfg
module Diag = Pp_ir.Diag
module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Union_find = Pp_graph.Union_find
module BL = Pp_core.Ball_larus
module Edge_profile = Pp_core.Edge_profile
module Inst = Pp_instrument.Instrument

type ctx = {
  mode : Inst.mode;
  options : Inst.options;
  original : Proc.t;
  instrumented : Proc.t;
  info : Inst.proc_info;
  ocfg : Cfg.t;
  icfg : Cfg.t;
  idfs : Dfs.t;
  iback : bool array;  (** by instrumented edge id *)
  scans : Scan.t array;  (** by instrumented block label *)
  n_orig : int;
  preamble : Block.label;
  mutable diags : Diag.t list;
}

let report ctx d = ctx.diags <- d :: ctx.diags

let errf ctx loc msg =
  report ctx { Diag.severity = Diag.Error; loc; message = msg }

let block_loc ctx l = Diag.block_loc ctx.instrumented.Proc.name l
let instr_loc ctx l at = Diag.instr_loc ctx.instrumented.Proc.name l at
let term_loc ctx l = Diag.term_loc ctx.instrumented.Proc.name l

let is_split ctx l = l >= ctx.n_orig && l <> ctx.preamble

(* ------------------------------------------------------------------ *)
(* Mapping instrumented edges back to original edges.                  *)

type emap =
  | Mentry  (** ENTRY -> preamble: charged the original entry edge's Val *)
  | Minternal  (** preamble->entry block, split->target: charged 0 *)
  | Morig of Digraph.edge  (** an original non-backedge edge *)
  | Mback of Digraph.edge  (** crosses the original backedge *)
  | Munknown

let orig_edge_of ctx ~src ~role ~dst =
  List.find_opt
    (fun (oe : Digraph.edge) ->
      Cfg.role ctx.ocfg oe = role
      &&
      match dst with
      | Some w -> oe.Digraph.dst = w
      | None -> oe.Digraph.dst = ctx.ocfg.Cfg.exit)
    (Digraph.out_edges ctx.ocfg.Cfg.graph src)

let build_edge_map ctx ~orig_backedge =
  let g = ctx.icfg.Cfg.graph in
  let map = Array.make (Digraph.num_edges g) Munknown in
  let classify oe =
    if orig_backedge oe then Mback oe else Morig oe
  in
  Digraph.iter_edges
    (fun (e : Digraph.edge) ->
      let m =
        if e.Digraph.src = ctx.icfg.Cfg.entry then Mentry
        else
          match Cfg.label_of_vertex ctx.icfg e.Digraph.src with
          | None -> Munknown
          | Some ls when ls = ctx.preamble -> Minternal
          | Some ls when is_split ctx ls ->
              (* split -> target: find the original edge via the split's
                 unique predecessor and the branch arm it came from. *)
              (match Digraph.in_edges g ls with
              | [ up ] -> (
                  match
                    ( Cfg.label_of_vertex ctx.icfg up.Digraph.src,
                      Cfg.label_of_vertex ctx.icfg e.Digraph.dst )
                  with
                  | Some u, Some w -> (
                      match
                        orig_edge_of ctx ~src:u
                          ~role:(Cfg.role ctx.icfg up)
                          ~dst:(Some w)
                      with
                      | Some oe ->
                          if orig_backedge oe then Mback oe else Minternal
                      | None -> Munknown)
                  | _ -> Munknown)
              | _ -> Munknown)
          | Some ls -> (
              (* an original block's out-edge *)
              let role = Cfg.role ctx.icfg e in
              if e.Digraph.dst = ctx.icfg.Cfg.exit then
                match orig_edge_of ctx ~src:ls ~role ~dst:None with
                | Some oe -> classify oe
                | None -> Munknown
              else
                match Cfg.label_of_vertex ctx.icfg e.Digraph.dst with
                | None -> Munknown
                | Some w when is_split ctx w -> (
                    (* original edge diverted through a split block *)
                    match Digraph.out_edges g w with
                    | [ down ] -> (
                        match
                          Cfg.label_of_vertex ctx.icfg down.Digraph.dst
                        with
                        | Some w' -> (
                            match
                              orig_edge_of ctx ~src:ls ~role ~dst:(Some w')
                            with
                            | Some oe ->
                                (* the Val is charged on u->split; the
                                   split->target leg carries 0 (or the
                                   backedge, for a split backedge). *)
                                if orig_backedge oe then Minternal
                                else Morig oe
                            | None -> Munknown)
                        | None -> Munknown)
                    | _ -> Munknown)
                | Some w when w = ctx.preamble -> Munknown
                | Some w -> (
                    match orig_edge_of ctx ~src:ls ~role ~dst:(Some w) with
                    | Some oe -> classify oe
                    | None -> Munknown))
      in
      map.(e.Digraph.id) <- m;
      if m = Munknown then
        errf ctx
          (block_loc ctx
             (match Cfg.label_of_vertex ctx.icfg e.Digraph.src with
             | Some l -> l
             | None -> ctx.instrumented.Proc.entry))
          (Printf.sprintf "cannot map instrumented edge %s back to the original CFG"
             (Cfg.vertex_name ctx.icfg e.Digraph.src
             ^ "->"
             ^ Cfg.vertex_name ctx.icfg e.Digraph.dst)))
    g;
  map

(* ------------------------------------------------------------------ *)
(* Path-register dataflow over the instrumented DAG.                   *)

type dstate =
  | Unreached
  | Uninit of int  (** P never written; accumulated expected Val sum *)
  | D of int  (** P - expected sum, a constant *)
  | Reset of int  (** P holds an absolute value (post-commit reset) *)
  | Bad

type commit = {
  cat : int;  (** instruction index *)
  ckey : Scan.sval;
  ctable_ok : bool;
  cmetrics : bool;
  crezero : bool;
  crezero_read : bool;  (** read-after-write follows the re-zero *)
}

(* Assemble the block's path commits from the scanner's raw events. *)
let commits_of_block ctx (sc : Scan.t) =
  let hw = ctx.mode = Inst.Flow_hw in
  let array_commit cell at =
    let table_ok =
      match ctx.info.Inst.table with
      | Inst.Array_table { global; cells } ->
          cell.Scan.cglobal = global && cell.Scan.stride = cells * 8
      | _ -> false
    in
    let metrics =
      List.exists
        (function
          | Scan.Metric_inc { cell = c; off = 8; pic = 0; at = a } ->
              c = cell && a > at
          | _ -> false)
        sc.Scan.events
      && List.exists
           (function
             | Scan.Metric_inc { cell = c; off = 16; pic = 1; at = a } ->
                 c = cell && a > at
             | _ -> false)
           sc.Scan.events
    in
    let rezero_at =
      List.fold_left
        (fun acc ev ->
          match ev with
          | Scan.Hw_zero { at = a } when a > at -> (
              match acc with Some b when b <= a -> acc | _ -> Some a)
          | _ -> acc)
        None sc.Scan.events
    in
    (* The same read-after-write idiom the entry zeroing requires: a
       backedge re-zero without a following PIC read leaves the write
       incomplete, so the next path's readings are garbage. *)
    let rezero_read =
      match rezero_at with
      | None -> false
      | Some z ->
          List.exists
            (function Scan.Hw_read { at = a; _ } -> a > z | _ -> false)
            sc.Scan.events
    in
    {
      cat = at;
      ckey = Scan.Path cell.Scan.key_off;
      ctable_ok = table_ok;
      cmetrics = metrics;
      crezero = rezero_at <> None;
      crezero_read = rezero_read;
    }
  in
  List.filter_map
    (function
      | Scan.Freq_inc { cell; at } -> Some (array_commit cell at)
      | Scan.Path_prof { kind; table; key; at } ->
          let table_ok =
            match (ctx.info.Inst.table, kind) with
            | Inst.Hash_table { id }, `Hash -> table = id && not hw
            | Inst.Hash_table { id }, `Hash_hw -> table = id && hw
            | Inst.Cct_table { id }, `Cct -> table = id
            | _ -> false
          in
          let hw_ok = kind = `Hash_hw in
          Some
            {
              cat = at;
              ckey = key;
              ctable_ok = table_ok;
              cmetrics = hw_ok;
              (* The runtime pseudo-op re-zeroes (and reads) internally. *)
              crezero = hw_ok;
              crezero_read = hw_ok;
            }
      | _ -> None)
    sc.Scan.events

type block_kind =
  | Kret of int  (** expected Val of the return edge *)
  | Kback of Digraph.edge * int * int  (** orig backedge, start, end vals *)
  | Kinterior

let verify_paths ctx (bl : BL.t) =
  let g = ctx.icfg.Cfg.graph in
  (* Backedge correspondence: instrumented back edges must map 1:1 onto the
     numbering's backedges. *)
  let orig_backs = BL.backedges bl in
  let orig_backedge (oe : Digraph.edge) =
    List.exists (fun (b : Digraph.edge) -> b.Digraph.id = oe.Digraph.id) orig_backs
  in
  let emap = build_edge_map ctx ~orig_backedge in
  let iback_edges =
    List.filter (fun (e : Digraph.edge) -> ctx.iback.(e.Digraph.id))
      (Array.to_list (Array.init (Digraph.num_edges g) (Digraph.edge g)))
  in
  let mapped_backs =
    List.filter_map
      (fun (e : Digraph.edge) ->
        match emap.(e.Digraph.id) with
        | Mback oe -> Some oe.Digraph.id
        | _ ->
            errf ctx
              (term_loc ctx
                 (match Cfg.label_of_vertex ctx.icfg e.Digraph.src with
                 | Some l -> l
                 | None -> ctx.preamble))
              "a loop backedge does not correspond to any original backedge";
            None)
      iback_edges
  in
  let ok_bijection =
    List.length mapped_backs = List.length orig_backs
    && List.sort_uniq compare mapped_backs = List.sort compare mapped_backs
    && List.for_all
         (fun (b : Digraph.edge) -> List.mem b.Digraph.id mapped_backs)
         orig_backs
  in
  if not ok_bijection then
    errf ctx
      (Diag.proc_loc ctx.instrumented.Proc.name)
      "instrumented loop backedges do not match the Ball-Larus numbering";
  (* Also: edges the map says cross a backedge must actually be DFS back
     edges, otherwise the DAG walk below would mis-handle them. *)
  Array.iteri
    (fun id m ->
      match m with
      | Mback _ when not ctx.iback.(id) ->
          errf ctx
            (Diag.proc_loc ctx.instrumented.Proc.name)
            "an original backedge became a forward edge after instrumentation"
      | _ -> ())
    emap;
  let entry_val =
    (* the real entry edge (always Val 0 by construction, but charge the
       numbering's actual value rather than assuming) *)
    match Digraph.out_edges ctx.ocfg.Cfg.graph ctx.ocfg.Cfg.entry with
    | e :: _ -> BL.edge_val bl e
    | [] -> 0
  in
  let expected_val (e : Digraph.edge) =
    match emap.(e.Digraph.id) with
    | Mentry -> entry_val
    | Minternal -> 0
    | Morig oe -> BL.edge_val bl oe
    | Mback _ | Munknown -> 0
  in
  (* Block kinds. *)
  let kind_of l =
    let b = ctx.instrumented.Proc.blocks.(l) in
    match b.Block.term with
    | Block.Ret _ -> (
        let ret_edge =
          List.find_opt
            (fun (e : Digraph.edge) -> e.Digraph.dst = ctx.icfg.Cfg.exit)
            (Digraph.out_edges g l)
        in
        match ret_edge with
        | Some e -> (
            match emap.(e.Digraph.id) with
            | Morig oe -> Kret (BL.edge_val bl oe)
            | _ -> Kret 0)
        | None -> Kinterior)
    | Block.Jmp _ | Block.Br _ -> (
        let back =
          List.find_opt
            (fun (e : Digraph.edge) -> ctx.iback.(e.Digraph.id))
            (Digraph.out_edges g l)
        in
        match back with
        | Some e -> (
            if List.length (Digraph.out_edges g l) > 1 then
              errf ctx (term_loc ctx l)
                "a backedge-committing block must have the backedge as its \
                 only successor";
            match emap.(e.Digraph.id) with
            | Mback oe ->
                let s, f = BL.backedge_pseudo_vals bl oe in
                Kback (oe, s, f)
            | _ -> Kinterior)
        | None -> Kinterior)
  in
  let kinds = Array.init (Array.length ctx.instrumented.Proc.blocks) kind_of in
  (* The DAG walk in reverse postorder (a topological order once back edges
     are set aside). *)
  let nv = Digraph.num_vertices g in
  let out_state = Array.make nv Unreached in
  let in_state = Array.make nv Unreached in
  let hw = ctx.mode = Inst.Flow_hw in
  let check_commits l st =
    let sc = ctx.scans.(l) in
    let commits = commits_of_block ctx sc in
    let kind = kinds.(l) in
    (match (kind, commits) with
    | (Kret _ | Kback _), [] ->
        errf ctx (term_loc ctx l) "missing path commit on a path-ending block"
    | (Kret _ | Kback _), _ :: _ :: _ ->
        errf ctx (term_loc ctx l) "multiple path commits on one block"
    | Kinterior, c :: _ ->
        errf ctx (instr_loc ctx l c.cat)
          "path commit in the interior of a path (not a return or backedge)"
    | _ -> ());
    let v_out =
      match kind with Kret v -> Some v | Kback (_, _, f) -> Some f | Kinterior -> None
    in
    List.iter
      (fun c ->
        let loc = instr_loc ctx l c.cat in
        if not c.ctable_ok then
          errf ctx loc "path commit targets the wrong counter table";
        (match (st, c.ckey, v_out) with
        | D d, Scan.Path n, Some v ->
            if d + n <> v then
              errf ctx loc
                (Printf.sprintf
                   "path commit records a wrong path number (off by %d from \
                    the Ball-Larus encoding)"
                   (d + n - v))
        | D _, Scan.Path _, None -> () (* interior: already reported *)
        | D _, Scan.Const _, _ ->
            errf ctx loc "path commit key is a constant, not the path register"
        | D _, _, _ ->
            errf ctx loc "path commit key is not derived from the path register"
        | Uninit _, _, _ ->
            errf ctx loc "path register may be uninitialised at this commit"
        | (Unreached | Bad | Reset _), _, _ -> ());
        if hw then begin
          if not c.cmetrics then
            errf ctx loc "hardware-metric commit does not accumulate both PICs";
          match kind with
          | Kback _ ->
              if not c.crezero then
                errf ctx loc "PICs are not re-zeroed after a backedge commit"
              else if not c.crezero_read then
                errf ctx loc
                  "no PIC read after the backedge re-zero (needed to force \
                   write completion)"
          | Kret _ | Kinterior -> ()
        end)
      commits;
    (* A return block in hw mode must not zero the PICs: the restore of the
       caller's counters follows the commit. *)
    if hw then
      match (kind, ctx.info.Inst.table) with
      | Kret _, Inst.Array_table _ ->
          List.iter
            (function
              | Scan.Hw_zero { at } ->
                  errf ctx (instr_loc ctx l at)
                    "PICs zeroed on a return path (the caller's counters are \
                     restored after the commit)"
              | _ -> ())
            sc.Scan.events
      | _ -> ()
  in
  let transfer l st =
    check_commits l st;
    let sc = ctx.scans.(l) in
    match st with
    | Unreached | Bad -> st
    | Uninit c -> (
        match sc.Scan.p_out with
        | Scan.Prel _ -> Uninit c
        | Scan.Pabs k -> D (k - c)
        | Scan.Ptop ->
            errf ctx (block_loc ctx l) "path register clobbered";
            Bad)
    | Reset _ -> st
    | D d -> (
        match sc.Scan.p_out with
        | Scan.Prel delta -> D (d + delta)
        | Scan.Pabs k -> Reset k
        | Scan.Ptop ->
            errf ctx (block_loc ctx l)
              "path register clobbered by unmodelled code";
            Bad)
  in
  let contribution (e : Digraph.edge) =
    if ctx.iback.(e.Digraph.id) then
      (* Crossing the backedge starts a new path: the seed is the reset
         constant minus the pseudo-start Val.  The reset is block-local and
         absolute, so the source block's summary suffices even though it is
         processed later in topological order. *)
      match emap.(e.Digraph.id) with
      | Mback oe -> (
          let start_v, _ = BL.backedge_pseudo_vals bl oe in
          let sl =
            match Cfg.label_of_vertex ctx.icfg e.Digraph.src with
            | Some l -> l
            | None -> ctx.preamble
          in
          match ctx.scans.(sl).Scan.p_out with
          | Scan.Pabs k -> Some (D (k - start_v))
          | Scan.Prel _ | Scan.Ptop ->
              errf ctx (term_loc ctx sl)
                "backedge does not reset the path register for the next path";
              Some Bad)
      | _ -> None
    else
      match out_state.(e.Digraph.src) with
      | Unreached -> None
      | Uninit c -> Some (Uninit (c + expected_val e))
      | D d -> Some (D (d - expected_val e))
      | Reset _ ->
          let sl =
            match Cfg.label_of_vertex ctx.icfg e.Digraph.src with
            | Some l -> l
            | None -> ctx.preamble
          in
          errf ctx (term_loc ctx sl)
            "path register reset flows out along a forward edge";
          Some Bad
      | Bad -> Some Bad
  in
  List.iter
    (fun v ->
      if v = ctx.icfg.Cfg.entry then begin
        in_state.(v) <- Uninit 0;
        out_state.(v) <- Uninit 0
      end
      else begin
        let contribs =
          List.filter_map contribution (Digraph.in_edges g v)
        in
        let st =
          match contribs with
          | [] -> Unreached
          | first :: rest ->
              if List.for_all (fun s -> s = first) rest then first
              else begin
                (match Cfg.label_of_vertex ctx.icfg v with
                | Some l ->
                    errf ctx (block_loc ctx l)
                      "paths disagree on the path-register offset at this \
                       join (some path would commit a wrong path number)"
                | None ->
                    errf ctx
                      (Diag.proc_loc ctx.instrumented.Proc.name)
                      "paths disagree on the path-register offset at EXIT");
                Bad
              end
        in
        in_state.(v) <- st;
        out_state.(v) <-
          (match Cfg.label_of_vertex ctx.icfg v with
          | Some l -> transfer l st
          | None -> st)
      end)
    (Dfs.reverse_postorder ctx.idfs)

(* ------------------------------------------------------------------ *)
(* PIC (hardware counter) discipline, mode Flow_hw.                    *)

let verify_pic ctx =
  let blocks = ctx.instrumented.Proc.blocks in
  let pre = ctx.scans.(ctx.preamble) in
  let first_zero =
    List.find_map
      (function Scan.Hw_zero { at } -> Some at | _ -> None)
      pre.Scan.events
  in
  if ctx.options.Inst.caller_saves then begin
    (* A3: the callee only zeroes; callers bracket every call site. *)
    (if first_zero = None then
       errf ctx (block_loc ctx ctx.preamble)
         "PICs are not zeroed at procedure entry");
    Array.iter
      (fun (b : Block.t) ->
        let l = b.Block.label in
        let sc = ctx.scans.(l) in
        let ev_at a = List.find_opt
            (fun e ->
              match e with
              | Scan.Hw_read { at; _ } | Scan.Hw_write { at; _ } -> at = a
              | _ -> false)
            sc.Scan.events
        in
        List.iter
          (function
            | Scan.Call_at { at; _ } ->
                let read_ok k d =
                  match ev_at (at - d) with
                  | Some (Scan.Hw_read { counter; _ }) -> counter = k
                  | _ -> false
                in
                let write_ok k d =
                  match ev_at (at + d) with
                  | Some (Scan.Hw_write { counter; src; _ }) ->
                      counter = k
                      && src = Scan.Pic_read (k, at - (3 - d))
                  | _ -> false
                in
                if not (read_ok 0 2 && read_ok 1 1) then
                  errf ctx (instr_loc ctx l at)
                    "call site does not save both PICs before the call \
                     (caller-saves discipline)";
                if not (write_ok 0 1 && write_ok 1 2) then
                  errf ctx (instr_loc ctx l at)
                    "call site does not restore both PICs after the call \
                     (caller-saves discipline)"
            | _ -> ())
          sc.Scan.events;
        (* No entry-save restores should appear at returns. *)
        match b.Block.term with
        | Block.Ret _ ->
            List.iter
              (function
                | Scan.Hw_write { src = Scan.Entry _; at; _ } ->
                    errf ctx (instr_loc ctx l at)
                      "unexpected callee-side PIC restore under caller-saves"
                | _ -> ())
              sc.Scan.events
        | _ -> ())
      blocks
  end
  else begin
    (* Callee-saves (the paper's default, section 3.1): save both counters
       at entry before zeroing; restore them before every return. *)
    let save_reg k =
      List.find_map
        (function
          | Scan.Hw_read { counter; reg; at }
            when counter = k
                 && (match first_zero with Some z -> at < z | None -> true) ->
              Some reg
          | _ -> None)
        pre.Scan.events
    in
    let s0 = save_reg 0 and s1 = save_reg 1 in
    (match first_zero with
    | None ->
        errf ctx (block_loc ctx ctx.preamble)
          "PICs are not zeroed at procedure entry"
    | Some z ->
        if
          not
            (List.exists
               (function Scan.Hw_read { at; _ } -> at > z | _ -> false)
               pre.Scan.events)
        then
          errf ctx (block_loc ctx ctx.preamble)
            "no PIC read after the entry zeroing (needed to force write \
             completion)");
    (match (s0, s1) with
    | Some _, Some _ -> ()
    | _ ->
        errf ctx (block_loc ctx ctx.preamble)
          "PICs are not saved at procedure entry before zeroing");
    (* The save registers must stay untouched until the returns. *)
    (match (s0, s1) with
    | Some r0, Some r1 ->
        Array.iter
          (fun (b : Block.t) ->
            let l = b.Block.label in
            let defs = ctx.scans.(l).Scan.defs in
            let bad r = List.mem r defs in
            let pre_ok r =
              (* in the preamble the save itself defines the register once *)
              l = ctx.preamble
              && List.length (List.filter (fun d -> d = r) defs) = 1
            in
            if (bad r0 && not (pre_ok r0)) || (bad r1 && not (pre_ok r1)) then
              errf ctx (block_loc ctx l)
                "a PIC save register is overwritten before the restore")
          blocks
    | _ -> ());
    Array.iter
      (fun (b : Block.t) ->
        let l = b.Block.label in
        let sc = ctx.scans.(l) in
        match b.Block.term with
        | Block.Ret _ ->
            let commit_at =
              List.fold_left
                (fun acc e ->
                  match e with
                  | Scan.Freq_inc { at; _ } | Scan.Path_prof { at; _ } ->
                      max acc at
                  | _ -> acc)
                (-1) sc.Scan.events
            in
            let restored k sk =
              List.exists
                (function
                  | Scan.Hw_write { counter; src = Scan.Entry r; at } ->
                      counter = k && Some r = sk && at > commit_at
                  | _ -> false)
                sc.Scan.events
            in
            if not (restored 0 s0 && restored 1 s1) then
              errf ctx (term_loc ctx l)
                "PICs are not restored from the entry saves after the final \
                 commit"
        | Block.Jmp _ | Block.Br _ ->
            List.iter
              (function
                | Scan.Hw_write { at; _ } ->
                    errf ctx (instr_loc ctx l at)
                      "PIC restore outside a return block"
                | _ -> ())
              sc.Scan.events)
      blocks
  end

(* No hardware-counter instructions may appear outside Flow_hw mode. *)
let verify_no_hw ctx =
  Array.iter
    (fun (b : Block.t) ->
      List.iter
        (function
          | Scan.Hw_zero { at } | Scan.Hw_read { at; _ } | Scan.Hw_write { at; _ }
            ->
              errf ctx (instr_loc ctx b.Block.label at)
                "hardware-counter instruction outside flow-hw mode"
          | _ -> ())
        ctx.scans.(b.Block.label).Scan.events)
    ctx.instrumented.Proc.blocks

(* ------------------------------------------------------------------ *)
(* CCT discipline, modes Context_hw and Context_flow.                  *)

let verify_cct ctx =
  let metrics = ctx.mode = Inst.Context_hw in
  let blocks = ctx.instrumented.Proc.blocks in
  let events_of l = ctx.scans.(l).Scan.events in
  (* Cct_enter: exactly one, in the preamble, with the right slot count. *)
  Array.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      List.iter
        (function
          | Scan.Cct_op { op = I.Cct_enter { nsites; _ }; at } ->
              if l <> ctx.preamble then
                errf ctx (instr_loc ctx l at) "Cct_enter outside the entry block"
              else if nsites <> ctx.original.Proc.nsites then
                errf ctx (instr_loc ctx l at)
                  "Cct_enter declares a wrong number of call sites"
          | _ -> ())
        (events_of l))
    blocks;
  let enters =
    List.length
      (List.filter
         (function Scan.Cct_op { op = I.Cct_enter _; _ } -> true | _ -> false)
         (events_of ctx.preamble))
  in
  if enters <> 1 then
    errf ctx (block_loc ctx ctx.preamble)
      "procedure entry must push exactly one CCT record";
  if metrics then begin
    let menter =
      List.exists
        (function
          | Scan.Cct_op { op = I.Cct_metric_enter; _ } -> true
          | _ -> false)
        (events_of ctx.preamble)
    in
    if not menter then
      errf ctx (block_loc ctx ctx.preamble)
        "context-hw entry does not record the PIC baseline (Cct_metric_enter)"
  end;
  (* Returns: exactly one Cct_exit per return block, none elsewhere;
     context-hw also accumulates the metric delta before the pop. *)
  Array.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      let exits =
        List.filter_map
          (function
            | Scan.Cct_op { op = I.Cct_exit; at } -> Some at
            | _ -> None)
          (events_of l)
      in
      match b.Block.term with
      | Block.Ret _ -> (
          (match exits with
          | [ _ ] -> ()
          | [] ->
              errf ctx (term_loc ctx l) "return does not pop the CCT record"
          | _ -> errf ctx (term_loc ctx l) "return pops the CCT record twice");
          if metrics then
            let mexit =
              List.find_map
                (function
                  | Scan.Cct_op { op = I.Cct_metric_exit; at } -> Some at
                  | _ -> None)
                (events_of l)
            in
            match (mexit, exits) with
            | Some m, [ e ] when m < e -> ()
            | Some _, [ _ ] ->
                errf ctx (term_loc ctx l)
                  "metric delta recorded after the CCT record was popped"
            | None, _ ->
                errf ctx (term_loc ctx l)
                  "return does not accumulate the PIC delta (Cct_metric_exit)"
            | _, _ -> ())
      | Block.Jmp _ | Block.Br _ ->
          List.iter
            (fun at ->
              errf ctx (instr_loc ctx l at) "Cct_exit outside a return block")
            exits)
    blocks;
  (* Every call is announced with its site just before the transfer. *)
  Array.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      let evs = events_of l in
      let cct_call_at a =
        List.find_map
          (function
            | Scan.Cct_op { op = I.Cct_call { site; indirect }; at }
              when at = a ->
                Some (site, indirect)
            | _ -> None)
          evs
      in
      List.iter
        (function
          | Scan.Call_at { site; indirect; at } -> (
              match cct_call_at (at - 1) with
              | Some (s, i) when s = site && i = indirect -> ()
              | Some _ ->
                  errf ctx (instr_loc ctx l at)
                    "Cct_call announces the wrong call site"
              | None ->
                  errf ctx (instr_loc ctx l at)
                    "call is not announced to the CCT (missing Cct_call)")
          | _ -> ())
        evs)
    blocks;
  (* Paper section 4.3: metric reads on loop backedges (ablation A4). *)
  if metrics && ctx.options.Inst.backedge_metric_reads then begin
    let g = ctx.icfg.Cfg.graph in
    Digraph.iter_edges
      (fun (e : Digraph.edge) ->
        if ctx.iback.(e.Digraph.id) then
          match Cfg.label_of_vertex ctx.icfg e.Digraph.src with
          | Some l ->
              let has =
                List.exists
                  (function
                    | Scan.Cct_op { op = I.Cct_metric_backedge; _ } -> true
                    | _ -> false)
                  (events_of l)
              in
              if not has then
                errf ctx (term_loc ctx l)
                  "loop backedge lacks the mid-procedure metric read"
          | None -> ())
      g
  end

(* ------------------------------------------------------------------ *)
(* Edge profiling (BL94): chord counters and flow conservation.        *)

let verify_edge_profile ctx ~global ~plan =
  let chords = Edge_profile.chords plan in
  let nctr = Edge_profile.num_counters plan in
  (* Where does each chord's increment legally live?  Mirror the editor's
     placement rules: entry edge -> preamble; a sole departure -> appended
     to the source; a sole arrival -> prepended to the destination; a
     branch arm into a join -> a fresh split block. *)
  let split_for (oe : Digraph.edge) =
    let role = Cfg.role ctx.ocfg oe in
    Array.to_list ctx.instrumented.Proc.blocks
    |> List.find_map (fun (b : Block.t) ->
           if not (is_split ctx b.Block.label) then None
           else
             match b.Block.term with
             | Block.Jmp w
               when Some w = Cfg.label_of_vertex ctx.ocfg oe.Digraph.dst -> (
                 (* confirm the split hangs off the chord's source arm *)
                 match
                   Cfg.label_of_vertex ctx.ocfg oe.Digraph.src
                 with
                 | Some u -> (
                     match ctx.instrumented.Proc.blocks.(u).Block.term with
                     | Block.Br (_, tl, fl) ->
                         if
                           (role = Cfg.Branch_true && tl = b.Block.label)
                           || (role = Cfg.Branch_false && fl = b.Block.label)
                         then Some b.Block.label
                         else None
                     | _ -> None)
                 | None -> None)
             | _ -> None)
  in
  let legal_site (oe : Digraph.edge) =
    match Cfg.role ctx.ocfg oe with
    | Cfg.Entry -> Some ctx.preamble
    | Cfg.Jump | Cfg.Return -> Cfg.label_of_vertex ctx.ocfg oe.Digraph.src
    | Cfg.Branch_true | Cfg.Branch_false ->
        if Digraph.in_degree ctx.ocfg.Cfg.graph oe.Digraph.dst = 1 then
          Cfg.label_of_vertex ctx.ocfg oe.Digraph.dst
        else split_for oe
  in
  (* Collect every increment of the plan's counter global. *)
  let incs = ref [] in
  Array.iter
    (fun (b : Block.t) ->
      List.iter
        (function
          | Scan.Ctr_inc { global = g; off; at } when g = global ->
              incs := (off, b.Block.label, at) :: !incs
          | _ -> ())
        ctx.scans.(b.Block.label).Scan.events)
    ctx.instrumented.Proc.blocks;
  let incs = !incs in
  List.iter
    (fun ((oe : Digraph.edge), idx) ->
      let found = List.filter (fun (off, _, _) -> off = idx * 8) incs in
      match found with
      | [] ->
          errf ctx
            (Diag.proc_loc ctx.instrumented.Proc.name)
            (Printf.sprintf "edge counter %d is never incremented" idx)
      | _ :: _ :: _ ->
          errf ctx
            (Diag.proc_loc ctx.instrumented.Proc.name)
            (Printf.sprintf "edge counter %d is incremented more than once" idx)
      | [ (_, l, at) ] -> (
          match legal_site oe with
          | Some site when site = l -> ()
          | _ ->
              errf ctx (instr_loc ctx l at)
                (Printf.sprintf
                   "edge counter %d is incremented on the wrong edge" idx)))
    chords;
  List.iter
    (fun (off, l, at) ->
      if off < 0 || off >= nctr * 8 || off mod 8 <> 0 then
        errf ctx (instr_loc ctx l at)
          "counter increment outside the edge-counter table"
      else if
        not (List.exists (fun (_, idx) -> idx * 8 = off) chords)
      then
        errf ctx (instr_loc ctx l at)
          "counter increment on a spanning-tree edge (should carry no code)")
    incs;
  (* Flow conservation: the uninstrumented edges plus the fictional
     EXIT->ENTRY edge must form a spanning tree, so Kirchhoff's equations
     have a unique solution for the tree-edge counts. *)
  let g = ctx.ocfg.Cfg.graph in
  let uf = Union_find.create (Digraph.num_vertices g) in
  let merges = ref 0 in
  let cyclic = ref false in
  let is_chord (oe : Digraph.edge) =
    List.exists (fun ((c : Digraph.edge), _) -> c.Digraph.id = oe.Digraph.id) chords
  in
  Digraph.iter_edges
    (fun oe ->
      if not (is_chord oe) then
        if Union_find.union uf oe.Digraph.src oe.Digraph.dst then incr merges
        else cyclic := true)
    g;
  if Union_find.union uf ctx.ocfg.Cfg.exit ctx.ocfg.Cfg.entry then incr merges
  else cyclic := true;
  if !cyclic then
    errf ctx
      (Diag.proc_loc ctx.instrumented.Proc.name)
      "uninstrumented edges contain a cycle: edge counts cannot be \
       reconstructed uniquely";
  if !merges <> Digraph.num_vertices g - 1 then
    errf ctx
      (Diag.proc_loc ctx.instrumented.Proc.name)
      "uninstrumented edges do not span the CFG: flow equations are \
       underdetermined"

(* ------------------------------------------------------------------ *)

let skipped ctx =
  match ctx.options.Inst.only with
  | Some names -> not (List.mem ctx.original.Proc.name names)
  | None -> false

let verify_proc ~mode ~options ~original ~instrumented ~(info : Inst.proc_info)
    =
  let icfg = Cfg.of_proc instrumented in
  let idfs = Dfs.run icfg.Cfg.graph ~root:icfg.Cfg.entry in
  let iback = Array.make (Digraph.num_edges icfg.Cfg.graph) false in
  List.iter
    (fun (e : Digraph.edge) -> iback.(e.Digraph.id) <- true)
    (Dfs.back_edges idfs);
  let path_home =
    match info.Inst.path_loc with
    | Some (Pp_instrument.Path_instr.Path_reg r) -> Some (Scan.Home_reg r)
    | Some (Pp_instrument.Path_instr.Path_slot off) -> Some (Scan.Home_slot off)
    | None -> None
  in
  let scans =
    Array.map
      (Scan.run ?path_home ~niregs:instrumented.Proc.niregs)
      instrumented.Proc.blocks
  in
  let ctx =
    {
      mode;
      options;
      original;
      instrumented;
      info;
      ocfg = Cfg.of_proc original;
      icfg;
      idfs;
      iback;
      scans;
      n_orig = Array.length original.Proc.blocks;
      preamble = instrumented.Proc.entry;
      diags = [];
    }
  in
  if skipped ctx then ctx.diags
  else begin
    (match info.Inst.numbering with
    | Some bl -> verify_paths ctx bl
    | None -> ());
    if mode = Inst.Flow_hw then verify_pic ctx else verify_no_hw ctx;
    (match mode with
    | Inst.Context_hw | Inst.Context_flow -> verify_cct ctx
    | Inst.Edge_freq | Inst.Flow_freq | Inst.Flow_hw -> ());
    (match info.Inst.table with
    | Inst.Edge_table { global; plan } -> verify_edge_profile ctx ~global ~plan
    | _ -> ());
    List.rev ctx.diags
  end

let verify_program ~original ~(manifest : Inst.manifest) instrumented =
  let infos = Array.of_list manifest.Inst.infos in
  let diags = ref [] in
  if
    Array.length original.Program.procs
    <> Array.length instrumented.Program.procs
    || Array.length infos <> Array.length original.Program.procs
  then
    diags :=
      [
        Diag.error (Diag.proc_loc instrumented.Program.main)
          "instrumented program has a different set of procedures";
      ]
  else begin
    Array.iteri
      (fun i op ->
        let ip = instrumented.Program.procs.(i) in
        let info = infos.(i) in
        if op.Proc.name <> ip.Proc.name || info.Inst.proc <> op.Proc.name then
          diags :=
            Diag.error (Diag.proc_loc ip.Proc.name)
              "procedure order changed during instrumentation"
            :: !diags
        else
          diags :=
            List.rev_append
              (verify_proc ~mode:manifest.Inst.mode
                 ~options:manifest.Inst.options ~original:op ~instrumented:ip
                 ~info)
              !diags;
        (* counter tables must exist and be large enough *)
        match info.Inst.table with
        | Inst.Array_table { global; cells } -> (
            match Program.find_global instrumented global with
            | Some g when g.Program.size_words >= info.Inst.num_paths * cells
              ->
                ()
            | Some _ ->
                diags :=
                  Diag.error (Diag.proc_loc ip.Proc.name)
                    "path-counter table is too small for the number of paths"
                  :: !diags
            | None ->
                diags :=
                  Diag.error (Diag.proc_loc ip.Proc.name)
                    "path-counter table global is missing"
                  :: !diags)
        | Inst.Edge_table { global; plan } -> (
            match Program.find_global instrumented global with
            | Some g
              when g.Program.size_words
                   >= max 1 (Edge_profile.num_counters plan) ->
                ()
            | Some _ ->
                diags :=
                  Diag.error (Diag.proc_loc ip.Proc.name)
                    "edge-counter table is too small"
                  :: !diags
            | None ->
                diags :=
                  Diag.error (Diag.proc_loc ip.Proc.name)
                    "edge-counter table global is missing"
                  :: !diags)
        | Inst.No_table | Inst.Hash_table _ | Inst.Cct_table _ -> ())
      original.Program.procs
  end;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* pp prove: abstract-interpretation certification.                    *)
(*                                                                     *)
(* Two clients of Absint over the instrumented CFG:                    *)
(*   bounds      - every counter-table access stays inside the table,  *)
(*                 8-byte aligned, and every stored counter is far     *)
(*                 from 63-bit wraparound; every hash/CCT commit key   *)
(*                 is provably within [0, num_paths).                  *)
(*   taint       - instrumentation-introduced state (path register or  *)
(*                 spill slot, PIC readings, table cells) never flows  *)
(*                 into a program-visible register, memory word,       *)
(*                 output, call argument, branch or return value.      *)
(* Zero false alarms by construction on correct instrumentation: the   *)
(* path register is reset to a constant on every backedge, so loop     *)
(* widening never touches it, and the interval join at a commit is     *)
(* exactly the hull of the Ball-Larus path sums.                       *)

(* Counters must stay far below the 63-bit wraparound point. *)
let counter_limit = max_int asr 2

let prove_proc ~budget ~(original : Proc.t) ~(instrumented : Proc.t)
    ~(info : Inst.proc_info) ~tables =
  let state = Inst.state ~original ~instrumented info in
  let policy = Taint.of_state state in
  let aconf = Absint.config ~budget ~policy ~tables () in
  let ai = Absint.analyze ~conf:aconf (Cfg.of_proc instrumented) in
  let diags = ref [] in
  let pname = instrumented.Proc.name in
  let err loc fmt =
    Format.kasprintf
      (fun message ->
        diags := { Diag.severity = Diag.Error; loc; message } :: !diags)
      fmt
  in
  let orig_ireg r = r < original.Proc.niregs in
  let orig_freg f = f < original.Proc.nfregs in
  (* A value is program-invisible ("offending" at a sink) when it is
     tainted or is a pointer into a counter table — the latter catches
     table addresses laundered through clean arithmetic. *)
  let offending (v : Absint.value) =
    Taint.equal v.Absint.taint Taint.Tainted
    ||
    match v.Absint.base with
    | Absint.Bglobal g -> Taint.is_table policy g
    | _ -> false
  in
  let owned_address (a : Absint.value) =
    match a.Absint.base with
    | Absint.Bglobal g -> Taint.is_table policy g
    | Absint.Bframe -> Absint.in_fresh_slots aconf a.Absint.itv
    | _ -> false
  in
  let check_bounds loc ~what (a : Absint.value) ~size_words =
    let bytes = size_words * 8 in
    if not (Congruence.divides 8 a.Absint.cong) then
      err loc "%s is not provably 8-byte aligned (offset %a)" what
        Congruence.pp a.Absint.cong;
    let lo = Interval.lo a.Absint.itv and hi = Interval.hi a.Absint.itv in
    if lo < 0 || hi > bytes - 8 then
      err loc "%s offset %a escapes the %d-byte table" what Interval.pp
        a.Absint.itv bytes
  in
  let table_access env rb off =
    let a = Absint.address env ~base:rb ~off in
    match a.Absint.base with
    | Absint.Bglobal g -> (
        match List.assoc_opt g tables with
        | Some size_words -> Some (a, size_words)
        | None -> None)
    | _ -> None
  in
  let check_args loc env ~args ~fargs ~target =
    List.iter
      (fun r ->
        if offending (Absint.ireg env r) then
          err loc "instrumentation state passed to a call (r%d = %a)" r
            Absint.pp_value (Absint.ireg env r))
      args;
    List.iter
      (fun f ->
        if Taint.equal (Absint.ftaint env f) Taint.Tainted then
          err loc "instrumentation state passed to a call (f%d)" f)
      fargs;
    match target with
    | Some r when offending (Absint.ireg env r) ->
        err loc "indirect-call target depends on instrumentation state"
    | _ -> ()
  in
  let check_instr l ~pos env (instr : I.t) =
    let loc = Diag.instr_loc pname l pos in
    let post = Absint.transfer aconf env instr in
    (* program-visible register definitions *)
    List.iter
      (fun rd ->
        if orig_ireg rd then
          let v = Absint.ireg post rd in
          if offending v then
            err loc
              "instrumentation state flows into program register r%d (%a)"
              rd Absint.pp_value v)
      (I.idefs instr);
    List.iter
      (fun fd ->
        if
          orig_freg fd
          && Taint.equal (Absint.ftaint post fd) Taint.Tainted
        then
          err loc "instrumentation state flows into program register f%d" fd)
      (I.fdefs instr);
    match instr with
    | I.Load (_, rb, off) | I.Fload (_, rb, off) -> (
        match table_access env rb off with
        | Some (a, size_words) ->
            check_bounds loc ~what:"table load" a ~size_words
        | None -> ())
    | I.Store (rs, rb, off) -> (
        match table_access env rb off with
        | Some (a, size_words) ->
            check_bounds loc ~what:"table store" a ~size_words;
            let v = Absint.ireg env rs in
            let lo = Interval.lo v.Absint.itv
            and hi = Interval.hi v.Absint.itv in
            if lo < 0 || hi > counter_limit then
              err loc
                "stored counter %a is not provably within [0, 2^61]"
                Absint.pp_value v
        | None ->
            let a = Absint.address env ~base:rb ~off in
            if not (owned_address a) then begin
              if offending (Absint.ireg env rs) then
                err loc
                  "instrumentation state stored to program-visible \
                   memory (%a)"
                  Absint.pp_value (Absint.ireg env rs);
              if Taint.equal a.Absint.taint Taint.Tainted then
                err loc
                  "store through an instrumentation-derived address (%a)"
                  Absint.pp_value a
            end)
    | I.Fstore (fs, rb, off) ->
        let a = Absint.address env ~base:rb ~off in
        if not (owned_address a) then begin
          if Taint.equal (Absint.ftaint env fs) Taint.Tainted then
            err loc
              "instrumentation state stored to program-visible memory \
               (f%d)"
              fs;
          if Taint.equal a.Absint.taint Taint.Tainted then
            err loc "store through an instrumentation-derived address (%a)"
              Absint.pp_value a
        end
    | I.Call { args; fargs; _ } ->
        check_args loc env ~args ~fargs ~target:None
    | I.Callind { target; args; fargs; _ } ->
        check_args loc env ~args ~fargs ~target:(Some target)
    | I.Print_int r ->
        if offending (Absint.ireg env r) then
          err loc "program output depends on instrumentation state (r%d)" r
    | I.Print_float f ->
        if Taint.equal (Absint.ftaint env f) Taint.Tainted then
          err loc "program output depends on instrumentation state (f%d)" f
    | I.Prof
        ( I.Path_commit_hash { path_reg; _ }
        | I.Path_commit_hash_hw { path_reg; _ }
        | I.Path_commit_cct { path_reg; _ } ) ->
        let v = Absint.ireg env path_reg in
        let np = info.Inst.num_paths in
        if info.Inst.numbering = None || np <= 0 then
          err loc "table commit without a path numbering"
        else
          let ok =
            v.Absint.base = Absint.Bnum
            && Interval.lo v.Absint.itv >= 0
            && Interval.hi v.Absint.itv < np
          in
          if not ok then
            err loc "commit key r%d = %a is not provably within [0, %d)"
              path_reg Absint.pp_value v np
    | _ -> ()
  in
  let check_term l env (term : Block.terminator) =
    let loc = Diag.term_loc pname l in
    match term with
    | Block.Br (r, _, _) ->
        if offending (Absint.ireg env r) then
          err loc "branch condition depends on instrumentation state (r%d)"
            r
    | Block.Ret (Block.Ret_int r) ->
        if offending (Absint.ireg env r) then
          err loc "return value depends on instrumentation state (r%d)" r
    | Block.Ret (Block.Ret_float f) ->
        if Taint.equal (Absint.ftaint env f) Taint.Tainted then
          err loc "return value depends on instrumentation state (f%d)" f
    | Block.Jmp _ | Block.Ret Block.Ret_void -> ()
  in
  Array.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      match Absint.iter_block ai l (fun ~pos env i -> check_instr l ~pos env i) with
      | None -> ()
      | Some tenv -> check_term l tenv b.Block.term)
    instrumented.Proc.blocks;
  List.rev !diags

let prove_program ?(budget = 2_000_000_000) ~original
    ~(manifest : Inst.manifest) instrumented =
  let infos = Array.of_list manifest.Inst.infos in
  let diags = ref [] in
  let table_names =
    List.concat_map
      (fun (i : Inst.proc_info) ->
        match i.Inst.table with
        | Inst.Array_table { global; _ } | Inst.Edge_table { global; _ } ->
            [ global ]
        | Inst.No_table | Inst.Hash_table _ | Inst.Cct_table _ -> [])
      manifest.Inst.infos
  in
  (* The original program must be oblivious of the counter tables, or
     table-pointer facts could be smuggled in as ordinary data. *)
  Array.iter
    (fun (p : Proc.t) ->
      Proc.iter_instrs
        (fun l instr ->
          match instr with
          | I.Iconst_sym (_, s) when List.mem s table_names ->
              diags :=
                Diag.error
                  (Diag.block_loc p.Proc.name l)
                  "original program references counter table %s" s
                :: !diags
          | _ -> ())
        p)
    original.Program.procs;
  if
    Array.length original.Program.procs
    <> Array.length instrumented.Program.procs
    || Array.length infos <> Array.length original.Program.procs
  then
    diags :=
      Diag.error
        (Diag.proc_loc instrumented.Program.main)
        "instrumented program has a different set of procedures"
      :: !diags
  else
    Array.iteri
      (fun i op ->
        let ip = instrumented.Program.procs.(i) in
        let info = infos.(i) in
        if op.Proc.name <> ip.Proc.name || info.Inst.proc <> op.Proc.name
        then
          diags :=
            Diag.error (Diag.proc_loc ip.Proc.name)
              "procedure order changed during instrumentation"
            :: !diags
        else
          let tables, missing =
            match info.Inst.table with
            | Inst.Array_table { global; _ }
            | Inst.Edge_table { global; _ } -> (
                match Program.find_global instrumented global with
                | Some g -> ([ (global, g.Program.size_words) ], false)
                | None -> ([], true))
            | Inst.No_table | Inst.Hash_table _ | Inst.Cct_table _ ->
                ([], false)
          in
          if missing then
            diags :=
              Diag.error (Diag.proc_loc ip.Proc.name)
                "counter-table global is missing"
              :: !diags
          else
            diags :=
              List.rev_append
                (prove_proc ~budget ~original:op ~instrumented:ip ~info
                   ~tables)
                !diags)
      original.Program.procs;
  List.rev !diags
