(** Machine-integer intervals over the VM's native 63-bit arithmetic.

    Since OCaml ints are bounded, [min_int, max_int] is genuinely top and
    no sentinel encoding is needed.  Every transfer function models the
    VM's {e wrapping} semantics: when some concrete operand pair could
    overflow, the result is {!top} — saturating would be unsound.  An
    implementation of {!Domain.S}. *)

type t

val top : t
val const : int -> t

(** @raise Invalid_argument if [lo > hi]. *)
val make : int -> int -> t

val lo : t -> int
val hi : t -> int
val is_top : t -> bool
val is_const : t -> int option
val mem : int -> t -> bool
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t

(** [widen old next]: any bound that moved jumps to infinity, so chains
    stabilise after at most two widenings per side. *)
val widen : t -> t -> t

(** Like {!binop}, additionally reporting the no-wrap promise: [true]
    means no concrete operand pair drawn from the inputs overflows.  The
    driver feeds this to the other domains' [no_wrap] hints. *)
val binop_report : Pp_ir.Instr.ibinop -> t -> t -> t * bool

val binop : no_wrap:bool -> Pp_ir.Instr.ibinop -> t -> t -> t
val cmp : Pp_ir.Instr.cmp -> t -> t -> t
val pp : Format.formatter -> t -> unit
