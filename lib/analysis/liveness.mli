(** Backward live-register analysis over both register classes.

    Registers are numbered densely: integer register [r] is [r], float
    register [f] is [niregs + f]; {!reg_name} renders an index back to
    ["r3"] / ["f1"] form. *)

type t

val compute : Pp_ir.Cfg.t -> t

(** Registers live on entry to / exit from a block ([None] when the block
    is unreachable). *)
val live_in : t -> Pp_ir.Block.label -> Dataflow.Bitset.t option

val live_out : t -> Pp_ir.Block.label -> Dataflow.Bitset.t option
val reg_name : t -> int -> string

(** Side-effect-free instructions whose results are never read.  Implicit
    zero initialisers ([Iconst (r, 0)] / [Fconst (f, 0.)]) are skipped
    unless [flag_zero_init] — the MiniC frontend emits one per
    uninitialised declaration. *)
val dead_stores : ?flag_zero_init:bool -> t -> Pp_ir.Diag.t list

(** Parameters whose incoming value is never read on any path (either
    redefined first or never touched). *)
val unused_params : t -> Pp_ir.Diag.t list
