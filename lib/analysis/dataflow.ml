module Digraph = Pp_graph.Digraph
module Cfg = Pp_ir.Cfg

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (L : LATTICE) = struct
  type result = {
    cfg : Cfg.t;
    direction : direction;
    inputs : L.t option array;  (* per vertex, on the init side *)
    outputs : L.t option array;
    steps : int;
  }

  let solve ?(edge_transfer = fun _ v -> v) ~direction (cfg : Cfg.t) ~init
      ~transfer =
    let g = cfg.Cfg.graph in
    let n = Digraph.num_vertices g in
    let inputs = Array.make n None in
    let outputs = Array.make n None in
    let steps = ref 0 in
    (* Orient the graph: [sources v] are the vertices feeding v in the
       direction of propagation, [feed_edges v] the connecting edges. *)
    let start, feed_edges =
      match direction with
      | Forward -> (cfg.Cfg.entry, fun v -> Digraph.in_edges g v)
      | Backward -> (cfg.Cfg.exit, fun v -> Digraph.out_edges g v)
    in
    let edge_source (e : Digraph.edge) =
      match direction with Forward -> e.src | Backward -> e.dst
    in
    let downstream v =
      match direction with
      | Forward -> Digraph.succs g v
      | Backward -> Digraph.preds g v
    in
    let apply v value =
      match Cfg.label_of_vertex cfg v with
      | None -> value  (* ENTRY/EXIT pass through *)
      | Some label ->
          incr steps;
          transfer label value
    in
    inputs.(start) <- Some init;
    outputs.(start) <- Some (apply start init);
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue v =
      if not queued.(v) then begin
        queued.(v) <- true;
        Queue.add v queue
      end
    in
    List.iter enqueue (downstream start);
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      queued.(v) <- false;
      let input =
        List.fold_left
          (fun acc e ->
            match outputs.(edge_source e) with
            | None -> acc
            | Some value -> (
                let value = edge_transfer e value in
                match acc with
                | None -> Some value
                | Some a -> Some (L.join a value)))
          None (feed_edges v)
      in
      match input with
      | None -> ()
      | Some input ->
          let changed =
            match inputs.(v) with
            | Some old when L.equal old input -> false
            | _ ->
                inputs.(v) <- Some input;
                true
          in
          if changed || outputs.(v) = None then begin
            let output = apply v input in
            let out_changed =
              match outputs.(v) with
              | Some old when L.equal old output -> false
              | _ ->
                  outputs.(v) <- Some output;
                  true
            in
            if out_changed then List.iter enqueue (downstream v)
          end
    done;
    { cfg; direction; inputs; outputs; steps = !steps }

  let vertex_of r label = Cfg.vertex_of_label r.cfg label

  (* "before"/"after" are in program order regardless of direction. *)
  let before r label =
    match r.direction with
    | Forward -> r.inputs.(vertex_of r label)
    | Backward -> r.outputs.(vertex_of r label)

  let after r label =
    match r.direction with
    | Forward -> r.outputs.(vertex_of r label)
    | Backward -> r.inputs.(vertex_of r label)

  let final r =
    match r.direction with
    | Forward -> r.inputs.(r.cfg.Cfg.exit)
    | Backward -> r.inputs.(r.cfg.Cfg.entry)

  let steps r = r.steps
end

module Bitset = struct
  type t = { size : int; bits : Bytes.t }

  let nbytes size = (size + 7) / 8
  let create size = { size; bits = Bytes.make (nbytes size) '\000' }

  let full size =
    let t = { size; bits = Bytes.make (nbytes size) '\255' } in
    (* Clear the slack bits so equal sets are byte-equal. *)
    let slack = (8 - (size land 7)) land 7 in
    if slack > 0 && size > 0 then begin
      let last = nbytes size - 1 in
      Bytes.set t.bits last
        (Char.chr (Char.code (Bytes.get t.bits last) lsr slack))
    end;
    t

  let copy t = { t with bits = Bytes.copy t.bits }
  let size t = t.size

  let check t i =
    if i < 0 || i >= t.size then invalid_arg "Bitset: index out of range"

  let add t i =
    check t i;
    Bytes.set t.bits (i lsr 3)
      (Char.chr (Char.code (Bytes.get t.bits (i lsr 3)) lor (1 lsl (i land 7))))

  let remove t i =
    check t i;
    Bytes.set t.bits (i lsr 3)
      (Char.chr
         (Char.code (Bytes.get t.bits (i lsr 3)) land lnot (1 lsl (i land 7))))

  let mem t i =
    check t i;
    Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let map2 f a b =
    if a.size <> b.size then invalid_arg "Bitset: size mismatch";
    let r = create a.size in
    for i = 0 to Bytes.length a.bits - 1 do
      Bytes.set r.bits i
        (Char.chr
           (f (Char.code (Bytes.get a.bits i)) (Char.code (Bytes.get b.bits i))
           land 0xff))
    done;
    r

  let union = map2 (fun x y -> x lor y)
  let inter = map2 (fun x y -> x land y)
  let diff = map2 (fun x y -> x land lnot y)
  let equal a b = a.size = b.size && Bytes.equal a.bits b.bits

  let is_empty t =
    let rec go i = i >= Bytes.length t.bits || (Bytes.get t.bits i = '\000' && go (i + 1)) in
    go 0

  let iter f t =
    for i = 0 to t.size - 1 do
      if mem t i then f i
    done

  let elements t =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) t;
    List.rev !acc

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      (elements t)
end

module Gen_kill = struct
  type confluence = Union | Intersection

  module L = struct
    type t = Bitset.t

    let equal = Bitset.equal
    let pp = Bitset.pp
  end

  module Engine_union = Make (struct
    include L

    let join = Bitset.union
  end)

  module Engine_inter = Make (struct
    include L

    let join = Bitset.inter
  end)

  type result =
    | Runion of Engine_union.result
    | Rinter of Engine_inter.result

  let solve ~direction ~confluence cfg ~universe:_ ~gen ~kill ~init =
    let transfer label input =
      Bitset.union (gen label) (Bitset.diff input (kill label))
    in
    match confluence with
    | Union ->
        Runion (Engine_union.solve ~direction cfg ~init ~transfer)
    | Intersection ->
        Rinter (Engine_inter.solve ~direction cfg ~init ~transfer)

  let before r label =
    match r with
    | Runion r -> Engine_union.before r label
    | Rinter r -> Engine_inter.before r label

  let after r label =
    match r with
    | Runion r -> Engine_union.after r label
    | Rinter r -> Engine_inter.after r label

  let final = function
    | Runion r -> Engine_union.final r
    | Rinter r -> Engine_inter.final r
end
