(** Static instrumentation cost / perturbation report (`pp cost`).

    For every procedure under a given instrumentation mode: the number of
    probe sites, the code-size growth in instruction slots, the
    potential/feasible path counts, and the {!Freq}-estimated probe
    executions per invocation.  When a dynamic profile from `pp run` is
    supplied, the report also derives the {e exact} number of executed
    path probes per procedure (each profiled path decodes into the precise
    edges it crossed) and prints the estimated-versus-measured comparison
    with per-procedure and total error.

    Supplying a profile also enforces two cross-layer invariants as
    structured errors: no dynamically observed path may be statically
    infeasible, and a shard's feasible-path annotations must match what
    the analysis computes. *)

type measured = {
  invocations : int;  (** executed [From_entry] paths *)
  probes : int;  (** executed path-probe operations, derived exactly *)
}

type row = {
  proc : string;
  blocks : int;
  npaths : int;  (** 0 when the mode does not number paths *)
  nfeasible : int option;
      (** [None] when the path table was too large to enumerate or the
          mode does not number paths *)
  probe_sites : int;
  added_slots : int;
  est_path : float;  (** estimated path/edge-probe executions per call *)
  est_ctx : float;  (** estimated context-probe executions per call *)
  measured : measured option;
}

type report = { mode : Pp_instrument.Instrument.mode; rows : row list }

(** Exact per-category decode of a measured path profile: every profiled
    path replays into the precise probe operations it executed under the
    (recomputed) placement.  [commits] counts one table commit per
    traversal — every traversal ends in exactly one — of which
    [backedge_commits] happened inside a backedge operation (the rest are
    return-edge commits).  The telemetry overhead accountant
    ({!Pp_overhead.Overhead}) consumes this; {!compute} reports
    [probes = inits + increments + commits]. *)
type breakdown = {
  entry_traversals : int;  (** executed [From_entry] traversals *)
  inits : int;  (** executed entry path-register initialisations *)
  increments : int;  (** executed path-register increments *)
  commits : int;  (** executed table commits (one per traversal) *)
  backedge_commits : int;  (** commits executed by backedge operations *)
}

(** [measured_breakdown bl paths] decodes a procedure's measured path
    profile ([(path sum, metrics)] pairs as stored in
    {!Pp_core.Profile.proc}) against the placement the given [options]
    produce.  Exact: no modeling slack. *)
val measured_breakdown :
  ?options:Pp_instrument.Instrument.options ->
  Pp_core.Ball_larus.t ->
  (int * Pp_core.Profile.path_metrics) list ->
  breakdown

val compute :
  ?options:Pp_instrument.Instrument.options ->
  ?max_enumerate:int ->
  mode:Pp_instrument.Instrument.mode ->
  ?profile:Pp_core.Profile_io.saved ->
  Pp_ir.Program.t ->
  (report, Pp_ir.Diag.t) result

(** Deterministic plain-text rendering (CI diffs it byte-for-byte). *)
val render : report -> string

(** Single-line JSON rendering of the same report, following the
    [pp overhead --json] conventions ([null] for absent optionals). *)
val to_json : report -> string
