(** Static instrumentation cost / perturbation report (`pp cost`).

    For every procedure under a given instrumentation mode: the number of
    probe sites, the code-size growth in instruction slots, the
    potential/feasible path counts, and the {!Freq}-estimated probe
    executions per invocation.  When a dynamic profile from `pp run` is
    supplied, the report also derives the {e exact} number of executed
    path probes per procedure (each profiled path decodes into the precise
    edges it crossed) and prints the estimated-versus-measured comparison
    with per-procedure and total error.

    Supplying a profile also enforces two cross-layer invariants as
    structured errors: no dynamically observed path may be statically
    infeasible, and a shard's feasible-path annotations must match what
    the analysis computes. *)

type measured = {
  invocations : int;  (** executed [From_entry] paths *)
  probes : int;  (** executed path-probe operations, derived exactly *)
}

type row = {
  proc : string;
  blocks : int;
  npaths : int;  (** 0 when the mode does not number paths *)
  nfeasible : int option;
      (** [None] when the path table was too large to enumerate or the
          mode does not number paths *)
  probe_sites : int;
  added_slots : int;
  est_path : float;  (** estimated path/edge-probe executions per call *)
  est_ctx : float;  (** estimated context-probe executions per call *)
  measured : measured option;
}

type report = { mode : Pp_instrument.Instrument.mode; rows : row list }

val compute :
  ?options:Pp_instrument.Instrument.options ->
  ?max_enumerate:int ->
  mode:Pp_instrument.Instrument.mode ->
  ?profile:Pp_core.Profile_io.saved ->
  Pp_ir.Program.t ->
  (report, Pp_ir.Diag.t) result

(** Deterministic plain-text rendering (CI diffs it byte-for-byte). *)
val render : report -> string
