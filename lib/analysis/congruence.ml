module I = Pp_ir.Instr

(* (m, r): with m = 0 exactly the constant r; with m > 0 the residue class
   r mod m (0 <= r < m).  Top is (1, 0). *)
type t = { m : int; r : int }

let top = { m = 1; r = 0 }
let const n = { m = 0; r = n }
let is_top t = t.m = 1
let is_const t = if t.m = 0 then Some t.r else None
let equal (a : t) (b : t) = a.m = b.m && a.r = b.r

(* Cap on tracked moduli; keeps (m, r) arithmetic far from overflow while
   covering every stride the instrumenter emits (table records are 8, 16
   or 24 bytes). *)
let mcap = 1 lsl 24

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let norm m r =
  if m = 0 then { m = 0; r }
  else if m = 1 || m > mcap then top
  else { m; r = ((r mod m) + m) mod m }

(* Local overflow-checked arithmetic (same trick as {!Interval}). *)
let sub_ovf a b =
  let d = a - b in
  if (a >= 0) <> (b >= 0) && (d >= 0) <> (a >= 0) then None else Some d

let mul_ovf a b =
  if a = 0 || b = 0 then Some 0
  else if (a = min_int && b = -1) || (b = min_int && a = -1) then None
  else
    let p = a * b in
    if p / b = a then Some p else None

let join a b =
  if equal a b then a
  else
    match sub_ovf a.r b.r with
    | None -> top
    | Some d when d = min_int -> top
    | Some d -> norm (gcd (gcd a.m b.m) (abs d)) a.r

(* The modulus of a join divides both inputs' moduli, so widening chains
   strictly shrink m: join doubles as a terminating widening. *)
let widen = join

let leq a b =
  if b.m = 1 then true
  else if b.m = 0 then a.m = 0 && a.r = b.r
  else a.m mod b.m = 0 && ((a.r mod b.m) + b.m) mod b.m = b.r

(* Exact VM semantics on two known constants — wraparound included, since
   native OCaml arithmetic is the VM's arithmetic. *)
let fold_const op x y =
  match (op : I.ibinop) with
  | I.Add -> const (x + y)
  | I.Sub -> const (x - y)
  | I.Mul -> const (x * y)
  | I.Div -> if y = 0 || (x = min_int && y = -1) then top else const (x / y)
  | I.Rem -> if y = 0 then top else const (x mod y)
  | I.And -> const (x land y)
  | I.Or -> const (x lor y)
  | I.Xor -> const (x lxor y)
  | I.Shl -> if y land 63 >= 62 then top else const (x lsl (y land 63))
  | I.Shr -> const (x asr (y land 63))

(* Residue of [t] modulo a target m > 0. *)
let residue t m = ((t.r mod m) + m) mod m

(* Top operands are NOT an early-out: top * {24} is exactly the
   multiples of 24 — the fact that proves table-offset alignment. *)
let rec binop ~no_wrap op a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> fold_const op x y
  | _ when not no_wrap -> top
  | _ -> (
      match (op : I.ibinop) with
      | I.Add ->
          let m = gcd a.m b.m in
          if m = 0 then top (* unreachable: both const handled above *)
          else norm m (residue a m + residue b m)
      | I.Sub ->
          let m = gcd a.m b.m in
          if m = 0 then top
          else norm m (residue a m - residue b m)
      | I.Mul -> (
          (* Granger: x*y = ra*rb (mod gcd (ma*mb, ma*rb, mb*ra)). *)
          match
            (mul_ovf a.m b.m, mul_ovf a.m b.r, mul_ovf b.m a.r,
             mul_ovf a.r b.r)
          with
          | Some mm, Some mr, Some rm, Some rr
            when mr <> min_int && rm <> min_int ->
              norm (gcd (gcd mm (abs mr)) (abs rm)) rr
          | _ -> top)
      | I.Shl -> (
          match is_const b with
          | Some c when c land 63 < 62 ->
              binop ~no_wrap I.Mul a (const (1 lsl (c land 63)))
          | _ -> top)
      | I.Div | I.Rem | I.And | I.Or | I.Xor | I.Shr -> top)

let cmp c a b =
  match (is_const a, is_const b) with
  | Some x, Some y ->
      let v =
        match (c : I.cmp) with
        | I.Eq -> x = y
        | I.Ne -> x <> y
        | I.Lt -> x < y
        | I.Le -> x <= y
        | I.Gt -> x > y
        | I.Ge -> x >= y
      in
      const (if v then 1 else 0)
  | _ -> top

(* True when every concrete value of [t] is divisible by [k] (k > 0). *)
let divides k t =
  k > 0 && t.m mod k = 0 && ((t.r mod k) + k) mod k = 0

let pp ppf t =
  if is_top t then Format.pp_print_string ppf "T"
  else if t.m = 0 then Format.fprintf ppf "{%d}" t.r
  else Format.fprintf ppf "%d mod %d" t.r t.m
