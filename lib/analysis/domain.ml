(** Signature shared by the numeric abstract domains ({!Interval},
    {!Congruence}).

    A domain abstracts sets of VM integers — native OCaml 63-bit values
    with silent wraparound.  Soundness contract: every operation must
    over-approximate the VM's {e actual} semantics, wraparound included.
    A transfer function that cannot express the wrapped result set must
    return {!top}; saturating would be unsound.

    Because a single domain usually cannot decide overflow on its own,
    [binop] receives a [no_wrap] hint: [true] promises that no concrete
    operand pair drawn from the abstract inputs overflows.  The driver
    ({!Absint}) computes the hint from the interval component, which
    tracks overflow exactly.  With [no_wrap:false] a domain may only use
    transfer functions that are wrap-safe by construction. *)

module type S = sig
  type t

  val top : t

  (** Exactly the singleton [{n}]. *)
  val const : int -> t

  val is_const : t -> int option
  val equal : t -> t -> bool

  (** Partial order: [leq a b] iff every concrete value of [a] is a
      concrete value of [b]. *)
  val leq : t -> t -> bool

  val join : t -> t -> t

  (** [widen old next] — upper bound of both arguments such that any
      chain [w0, widen w0 x1, widen (widen w0 x1) x2, ...] stabilises in
      finitely many steps. *)
  val widen : t -> t -> t

  (** Abstract counterpart of {!Pp_ir.Instr.ibinop} under VM semantics
      (6-bit shift masking, arithmetic [Shr], trapping division by
      zero).  [no_wrap] as described above. *)
  val binop : no_wrap:bool -> Pp_ir.Instr.ibinop -> t -> t -> t

  (** Abstract comparison; the result abstracts a subset of [{0, 1}]. *)
  val cmp : Pp_ir.Instr.cmp -> t -> t -> t

  val pp : Format.formatter -> t -> unit
end
