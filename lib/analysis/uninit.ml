module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module Diag = Pp_ir.Diag
module Bitset = Dataflow.Bitset
module Gen_kill = Dataflow.Gen_kill

type t = { cfg : Cfg.t; regs : Regs.t; result : Gen_kill.result }

let compute (cfg : Cfg.t) =
  let p = cfg.Cfg.proc in
  let regs = Regs.of_proc p in
  let universe = Regs.universe regs in
  let empty = Bitset.create universe in
  let kills =
    Array.map
      (fun (b : Block.t) ->
        let kill = Bitset.create universe in
        List.iter
          (fun instr -> List.iter (Bitset.add kill) (Regs.defs regs instr))
          b.Block.instrs;
        kill)
      p.Pp_ir.Proc.blocks
  in
  (* May-be-uninitialised: everything but the parameters at entry; a
     register leaves the set only when every path defines it. *)
  let init = Bitset.full universe in
  List.iter (Bitset.remove init) (Regs.params regs p);
  let result =
    Gen_kill.solve ~direction:Dataflow.Forward ~confluence:Gen_kill.Union cfg
      ~universe
      ~gen:(fun _ -> empty)
      ~kill:(fun l -> kills.(l))
      ~init
  in
  { cfg; regs; result }

let maybe_uninit_in t label = Gen_kill.before t.result label

let warnings t =
  let p = t.cfg.Cfg.proc in
  let diags = ref [] in
  let warn loc regs =
    List.iter
      (fun r ->
        diags :=
          Diag.warning loc "%s may be used uninitialised" (Regs.name t.regs r)
          :: !diags)
      regs
  in
  Array.iter
    (fun (b : Block.t) ->
      match maybe_uninit_in t b.Block.label with
      | None -> ()
      | Some set ->
          let uninit = Bitset.copy set in
          List.iteri
            (fun i instr ->
              let bad =
                List.filter (Bitset.mem uninit) (Regs.uses t.regs instr)
              in
              warn (Diag.instr_loc p.Pp_ir.Proc.name b.Block.label i) bad;
              List.iter (Bitset.remove uninit) (Regs.defs t.regs instr))
            b.Block.instrs;
          let bad =
            List.filter (Bitset.mem uninit) (Regs.term_uses t.regs b.Block.term)
          in
          warn (Diag.term_loc p.Pp_ir.Proc.name b.Block.label) bad)
    p.Pp_ir.Proc.blocks;
  List.rev !diags
