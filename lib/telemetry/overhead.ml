module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Runtime = Pp_vm.Runtime
module Cct = Pp_core.Cct
module Profile = Pp_core.Profile
module Edge_profile = Pp_core.Edge_profile
module Event = Pp_machine.Event
module Cost = Pp_analysis.Cost
module Pool = Pp_run.Pool
module Digraph = Pp_graph.Digraph

type category = Path_register | Table_commit | Cct_probe | Counter_read

let categories = [ Path_register; Table_commit; Cct_probe; Counter_read ]

let category_name = function
  | Path_register -> "path-register"
  | Table_commit -> "table-commit"
  | Cct_probe -> "cct-probe"
  | Counter_read -> "counter-read"

(* Simulated slots per probe: a register update is one arithmetic op; a
   table commit is an address computation plus load/add/store (and hash
   probing on spill); a CCT transition walks/creates a call record; a
   counter access is a single PIC read/write. *)
let unit_cost = function
  | Path_register -> 1.0
  | Table_commit -> 8.0
  | Cct_probe -> 10.0
  | Counter_read -> 1.0

type attribution = {
  category : category;
  probes : int;
  cycles : int;
  instructions : int;
}

type mode_row = {
  mode : string;
  cycles : int;
  instructions : int;
  delta_cycles : int;
  delta_instructions : int;
  attributions : attribution list;
  counters : (string * int) list;
}

type base = {
  base_cycles : int;
  base_instructions : int;
  base_counters : (string * int) list;
}

type report = {
  program : string;
  budget : int option;
  base : base;
  rows : mode_row list;
  failures : (string * string) list;
}

let all_modes =
  [
    Instrument.Edge_freq;
    Instrument.Flow_freq;
    Instrument.Flow_hw;
    Instrument.Context_hw;
    Instrument.Context_flow;
  ]

let profiles_context = function
  | Instrument.Context_hw | Instrument.Context_flow -> true
  | Instrument.Edge_freq | Instrument.Flow_freq | Instrument.Flow_hw -> false

(* {2 Largest-remainder apportionment} *)

let apportion ~total weights =
  let n = Array.length weights in
  if n = 0 then [||]
  else
    let wsum = Array.fold_left ( +. ) 0.0 weights in
    if wsum <= 0.0 then begin
      let out = Array.make n 0 in
      out.(n - 1) <- total;
      out
    end
    else begin
      let exact =
        Array.map (fun w -> float_of_int total *. w /. wsum) weights
      in
      let out = Array.map (fun x -> int_of_float (Float.floor x)) exact in
      let rem = total - Array.fold_left ( + ) 0 out in
      (* [floor] never overshoots, so 0 <= rem < n even for negative
         totals; hand the +1s to the largest fractional parts. *)
      let order = List.init n Fun.id in
      let frac i = exact.(i) -. Float.floor exact.(i) in
      let order =
        List.sort
          (fun i j ->
            match compare (frac j) (frac i) with 0 -> compare i j | c -> c)
          order
      in
      List.iteri (fun k i -> if k < rem then out.(i) <- out.(i) + 1) order;
      out
    end

(* {2 Exact probe decode} *)

type probe_counts = {
  p_register : int;
  p_commit : int;
  p_cct : int;
  p_read : int;
}

(* Hardware-metric counter accesses per probe under [Flow_hw]
   ({!Pp_instrument.Path_instr} templates): procedure entry saves both
   PICs, zeroes and re-reads one (4 ops) and the matching return
   restores both (2); every commit reads both PIC deltas (2); a backedge
   op additionally re-arms with a zero and a read-after-write (2). *)
let flow_hw_reads (b : Cost.breakdown) =
  (6 * b.Cost.entry_traversals) + (2 * b.Cost.commits)
  + (2 * b.Cost.backedge_commits)

let decode_probes (session : Driver.session) =
  let manifest = session.Driver.manifest in
  let options = manifest.Instrument.options in
  let mode = manifest.Instrument.mode in
  let pr = ref 0 and tc = ref 0 and cp = ref 0 and cr = ref 0 in
  (* Path-numbered procedures: replay the measured profile against the
     placement — exact counts, no modeling slack. *)
  let profile = Driver.path_profile session in
  List.iter
    (fun (p : Profile.proc_profile) ->
      let b =
        Cost.measured_breakdown ~options p.Profile.numbering p.Profile.paths
      in
      pr := !pr + b.Cost.inits + b.Cost.increments + b.Cost.backedge_commits;
      tc := !tc + b.Cost.commits;
      if mode = Instrument.Flow_hw then cr := !cr + flow_hw_reads b)
    profile.Profile.procs;
  (* Edge mode: each executed chord-counter increment is one table
     update; counts come straight off the counter array. *)
  (match mode with
  | Instrument.Edge_freq ->
      List.iter
        (fun (_, plan, edges) ->
          List.iter
            (fun ((e : Digraph.edge), _) ->
              match
                List.find_opt
                  (fun ((e' : Digraph.edge), _) -> e'.Digraph.id = e.Digraph.id)
                  edges
              with
              | Some (_, n) -> tc := !tc + n
              | None -> ())
            (Edge_profile.chords plan))
        (Driver.edge_profile session)
  | Instrument.Flow_freq | Instrument.Flow_hw | Instrument.Context_hw
  | Instrument.Context_flow ->
      ());
  (* Context modes: every call-record entry ran one enter and one exit
     probe; [metrics.(0)] counts entries exactly.  Context+HW probes
     additionally read both PICs on enter and on exit. *)
  if profiles_context mode then begin
    let entries = ref 0 in
    Cct.iter
      (fun node ->
        if Cct.parent node <> None then
          entries := !entries + (Cct.data node).Runtime.metrics.(0))
      (Driver.cct session);
    cp := 2 * !entries;
    if mode = Instrument.Context_hw then cr := !cr + (4 * !entries)
  end;
  { p_register = !pr; p_commit = !tc; p_cct = !cp; p_read = !cr }

let probes_of counts = function
  | Path_register -> counts.p_register
  | Table_commit -> counts.p_commit
  | Cct_probe -> counts.p_cct
  | Counter_read -> counts.p_read

(* {2 Measurement} *)

let counters_alist (r : Interp.result) =
  List.map (fun (e, v) -> (Event.name e, v)) r.Interp.counters

let measure_base ?budget ?engine prog =
  let r = Driver.run_baseline ?max_instructions:budget ?engine prog in
  {
    base_cycles = r.Interp.cycles;
    base_instructions = r.Interp.instructions;
    base_counters = counters_alist r;
  }

let measure_mode ?budget ?engine ~base prog mode =
  let session = Driver.prepare ?max_instructions:budget ?engine ~mode prog in
  let r = Driver.run session in
  let counts = decode_probes session in
  let delta_cycles = r.Interp.cycles - base.base_cycles in
  let delta_instructions = r.Interp.instructions - base.base_instructions in
  let weights =
    Array.of_list
      (List.map
         (fun c -> float_of_int (probes_of counts c) *. unit_cost c)
         categories)
  in
  let ac = apportion ~total:delta_cycles weights in
  let ai = apportion ~total:delta_instructions weights in
  let attributions =
    List.mapi
      (fun i c ->
        {
          category = c;
          probes = probes_of counts c;
          cycles = ac.(i);
          instructions = ai.(i);
        })
      categories
  in
  {
    mode = Instrument.mode_name mode;
    cycles = r.Interp.cycles;
    instructions = r.Interp.instructions;
    delta_cycles;
    delta_instructions;
    attributions;
    counters = counters_alist r;
  }

let compute ?budget ?engine ?(jobs = 1) ?(modes = all_modes) ~program prog =
  let base = measure_base ?budget ?engine prog in
  let outcomes =
    if jobs <= 1 then
      List.map
        (fun mode ->
          try Pool.Done (measure_mode ?budget ?engine ~base prog mode)
          with e -> Pool.Crashed (Printexc.to_string e))
        modes
    else
      Pool.map ~jobs
        (fun mode -> measure_mode ?budget ?engine ~base prog mode)
        modes
  in
  let rows, failures =
    List.fold_left2
      (fun (rows, failures) mode outcome ->
        match outcome with
        | Pool.Done row -> (row :: rows, failures)
        | (Pool.Crashed _ | Pool.Timed_out _) as o ->
            (rows, (Instrument.mode_name mode, Pool.describe o) :: failures))
      ([], []) modes outcomes
  in
  {
    program;
    budget;
    base;
    rows = List.rev rows;
    failures = List.rev failures;
  }

let check r =
  let rec go = function
    | [] -> Ok ()
    | row :: rest ->
        let sc =
          List.fold_left (fun acc (a : attribution) -> acc + a.cycles) 0 row.attributions
        and si =
          List.fold_left
            (fun acc (a : attribution) -> acc + a.instructions)
            0 row.attributions
        in
        if sc <> row.delta_cycles then
          Error
            (Printf.sprintf
               "%s: cycle attributions sum to %d, measured delta is %d"
               row.mode sc row.delta_cycles)
        else if si <> row.delta_instructions then
          Error
            (Printf.sprintf
               "%s: instruction attributions sum to %d, measured delta is %d"
               row.mode si row.delta_instructions)
        else go rest
  in
  go r.rows

(* {2 Rendering} *)

let pct delta base =
  if base = 0 then 0.0 else float_of_int delta /. float_of_int base *. 100.0

let render r =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "overhead report for %s%s" r.program
    (match r.budget with
    | Some b -> Printf.sprintf " (budget %d)" b
    | None -> "");
  line "baseline: %d cycles, %d instructions" r.base.base_cycles
    r.base.base_instructions;
  line "";
  line "overhead by mode (Table 1)";
  line "%-14s %12s %12s %9s %14s %9s" "mode" "cycles" "+cycles" "ovhd%"
    "instructions" "ovhd%";
  List.iter
    (fun row ->
      line "%-14s %12d %12d %8.1f%% %14d %8.1f%%" row.mode row.cycles
        row.delta_cycles
        (pct row.delta_cycles r.base.base_cycles)
        row.instructions
        (pct row.delta_instructions r.base.base_instructions))
    r.rows;
  List.iter (fun (m, why) -> line "%-14s %s" m why) r.failures;
  line "";
  line "cycle delta attributed to probe categories";
  line "%-14s %14s %14s %14s %14s %12s %12s" "mode"
    (category_name Path_register)
    (category_name Table_commit) (category_name Cct_probe)
    (category_name Counter_read) "sum" "delta";
  let mismatch = ref false in
  List.iter
    (fun row ->
      let cell c =
        match List.find_opt (fun (a : attribution) -> a.category = c) row.attributions with
        | Some a -> a
        | None -> { category = c; probes = 0; cycles = 0; instructions = 0 }
      in
      let sum =
        List.fold_left (fun acc (a : attribution) -> acc + a.cycles) 0 row.attributions
      in
      if
        sum <> row.delta_cycles
        || List.fold_left (fun acc (a : attribution) -> acc + a.instructions) 0 row.attributions
           <> row.delta_instructions
      then mismatch := true;
      line "%-14s %14d %14d %14d %14d %12d %12d" row.mode
        (cell Path_register).cycles (cell Table_commit).cycles
        (cell Cct_probe).cycles (cell Counter_read).cycles sum
        row.delta_cycles)
    r.rows;
  line "";
  line "exact executed-probe counts";
  line "%-14s %14s %14s %14s %14s" "mode"
    (category_name Path_register)
    (category_name Table_commit) (category_name Cct_probe)
    (category_name Counter_read);
  List.iter
    (fun row ->
      let cell c =
        match List.find_opt (fun (a : attribution) -> a.category = c) row.attributions with
        | Some a -> a.probes
        | None -> 0
      in
      line "%-14s %14d %14d %14d %14d" row.mode (cell Path_register)
        (cell Table_commit) (cell Cct_probe) (cell Counter_read))
    r.rows;
  (match check r with
  | Ok () when not !mismatch -> line "attribution: ok"
  | Ok () -> line "attribution: MISMATCH (render disagrees with check)"
  | Error msg -> line "attribution: MISMATCH (%s)" msg);
  line "";
  line "event-counter perturbation (Table 2)";
  Printf.bprintf buf "%-22s %14s" "event" "baseline";
  List.iter (fun row -> Printf.bprintf buf " %14s" row.mode) r.rows;
  Buffer.add_char buf '\n';
  List.iter
    (fun (ev, bv) ->
      Printf.bprintf buf "%-22s %14d" ev bv;
      List.iter
        (fun row ->
          let v =
            match List.assoc_opt ev row.counters with Some v -> v | None -> 0
          in
          Printf.bprintf buf " %14d" v)
        r.rows;
      Buffer.add_char buf '\n')
    r.base.base_counters;
  Buffer.contents buf

(* {2 JSON} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let counters cs =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) cs)
  in
  add "{\"program\":\"%s\"," (json_escape r.program);
  (match r.budget with
  | Some b -> add "\"budget\":%d," b
  | None -> add "\"budget\":null,");
  add "\"baseline\":{\"cycles\":%d,\"instructions\":%d,\"counters\":{%s}},"
    r.base.base_cycles r.base.base_instructions (counters r.base.base_counters);
  add "\"modes\":[";
  List.iteri
    (fun i row ->
      if i > 0 then add ",";
      add
        "{\"mode\":\"%s\",\"cycles\":%d,\"instructions\":%d,\"delta_cycles\":%d,\"delta_instructions\":%d,"
        (json_escape row.mode) row.cycles row.instructions row.delta_cycles
        row.delta_instructions;
      add "\"overhead_pct\":%.4f," (pct row.delta_cycles r.base.base_cycles);
      add "\"attribution\":[";
      List.iteri
        (fun j a ->
          if j > 0 then add ",";
          add
            "{\"category\":\"%s\",\"probes\":%d,\"cycles\":%d,\"instructions\":%d}"
            (category_name a.category) a.probes a.cycles a.instructions)
        row.attributions;
      add "],\"counters\":{%s}}" (counters row.counters))
    r.rows;
  add "],\"failures\":[";
  List.iteri
    (fun i (m, why) ->
      if i > 0 then add ",";
      add "{\"mode\":\"%s\",\"reason\":\"%s\"}" (json_escape m)
        (json_escape why))
    r.failures;
  add "],\"attribution_check\":\"%s\"}"
    (match check r with Ok () -> "ok" | Error _ -> "mismatch");
  Buffer.contents buf
