(** The metrics registry: named counters, gauges and log-bucketed
    histograms with a canonical deterministic dump, plus snapshot / diff /
    merge so per-worker metrics can flow back through the {!Pp_run.Pool}
    pipe protocol and aggregate in the parent.

    Merge algebra (the same laws {!Pp_core.Profile.merge} obeys, tested in
    [test_telemetry.ml]):
    - counters add, histograms add bucket-wise, gauges take the max —
      all three commutative and associative, with {!empty} as identity;
    - [diff after before] is the inverse on counters and histograms:
      [merge (diff after before) before = after] whenever [after] grew
      from [before].  A forked worker sends [diff (snapshot r) at_fork]
      so values inherited from the parent never double-count.

    Determinism contract: a dump contains no wall-clock or pid-dependent
    values unless a caller records them, so registries populated by
    deterministic work dump byte-identically at any [--jobs]. *)

type t

(** Pure, marshalable view of one metric. *)
type vsnap =
  | Counter of int
  | Gauge of int
  | Histogram of {
      count : int;
      sum : int;
      buckets : (int * int) list;
          (** (bucket index, occupancy), ascending, occupied only; bucket
              [k] holds values [v] with [2^(k-1) <= v < 2^k] ([k = 0]:
              [v <= 0]) *)
    }

(** Sorted by name; at most one entry per name. *)
type snapshot = (string * vsnap) list

val create : unit -> t

(** The process-global registry — what the pool ships between workers and
    what [--telemetry FILE] dumps. *)
val default : t

(** Forget every metric. *)
val reset : t -> unit

(** [incr t name n] adds [n] to counter [name] (created at 0).
    @raise Invalid_argument if [name] is registered as another kind. *)
val incr : t -> string -> int -> unit

(** [set_gauge t name v] sets gauge [name]. *)
val set_gauge : t -> string -> int -> unit

(** [observe t name v] adds [v] to histogram [name]. *)
val observe : t -> string -> int -> unit

(** The bucket index {!observe} files [v] under. *)
val bucket_of : int -> int

val empty : snapshot
val snapshot : t -> snapshot
val is_empty : snapshot -> bool

(** Commutative, associative, [empty]-identity.
    @raise Invalid_argument when a name carries different kinds. *)
val merge : snapshot -> snapshot -> snapshot

(** [diff after before]: what was recorded between the two snapshots.
    Counters and histogram cells subtract; a gauge keeps its [after]
    value; entries that did not change are omitted. *)
val diff : snapshot -> snapshot -> snapshot

(** Merge a snapshot into a live registry (the parent side of the pool
    protocol). *)
val absorb : t -> snapshot -> unit

(** Canonical dump: one line per metric, sorted by name, e.g.
    {[counter pool.tasks 18
      gauge run.shards 4
      hist matrix.cycles count=6 sum=124 b3=2 b5=4]}
    Byte-deterministic for equal snapshots. *)
val dump : snapshot -> string
