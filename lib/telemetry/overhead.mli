(** Overhead and perturbation accounting (`pp overhead`).

    The paper's Tables 1 and 2 measure what profiling costs: Table 1 the
    execution-time overhead of each instrumentation mode against an
    uninstrumented baseline, Table 2 how the probes perturb the very
    hardware counters being profiled.  This module reproduces both for
    the simulated machine, and goes one step further than the paper
    could: because a measured path profile decodes into the {e exact}
    probe operations executed ({!Pp_analysis.Cost.measured_breakdown}),
    the instrumented-minus-baseline delta is attributed to probe
    categories whose integer parts are made to sum {e exactly} to the
    delta (largest-remainder apportionment) — checked by {!check} and
    gated in CI via the ["attribution: ok"] line {!render} emits. *)

(** Where an instrumented run spends its extra work. *)
type category =
  | Path_register  (** path-register inits, increments, backedge resets *)
  | Table_commit  (** array/hash/CCT/edge-counter table updates *)
  | Cct_probe  (** CCT enter/exit bookkeeping *)
  | Counter_read  (** PIC reads/writes by hardware-metric probes *)

val categories : category list
val category_name : category -> string

(** Relative weight of one probe of this category, in simulated slots —
    the model used to split the measured delta across categories. *)
val unit_cost : category -> float

type attribution = {
  category : category;
  probes : int;  (** exact executed-probe count for this category *)
  cycles : int;  (** apportioned share of the cycle delta *)
  instructions : int;  (** apportioned share of the instruction delta *)
}

type mode_row = {
  mode : string;  (** {!Pp_instrument.Instrument.mode_name} *)
  cycles : int;
  instructions : int;
  delta_cycles : int;  (** instrumented minus baseline *)
  delta_instructions : int;
  attributions : attribution list;  (** one per {!categories}, in order *)
  counters : (string * int) list;  (** every event counter after the run *)
}

type base = {
  base_cycles : int;
  base_instructions : int;
  base_counters : (string * int) list;
}

type report = {
  program : string;
  budget : int option;
  base : base;
  rows : mode_row list;  (** in requested-mode order *)
  failures : (string * string) list;  (** (mode name, reason) *)
}

(** Every instrumentation mode, in the order tables print them. *)
val all_modes : Pp_instrument.Instrument.mode list

(** [apportion ~total weights] splits [total] into integer shares
    proportional to [weights], summing exactly to [total]
    (largest-remainder rounding; ties broken by lower index).  When all
    weights are zero the entire total lands on the last index. *)
val apportion : total:int -> float array -> int array

(** Run the uninstrumented program once under the machine model.
    [budget] bounds instructions (as [max_instructions]); [engine]
    selects the execution tier (default {!Pp_vm.Engine.default} — both
    tiers measure byte-identically, so the choice only affects speed).
    @raise Pp_vm.Interp.Trap *)
val measure_base :
  ?budget:int -> ?engine:Pp_vm.Engine.kind -> Pp_ir.Program.t -> base

(** Instrument for one mode, run, decode exact probe counts from the
    resulting profile, and apportion the delta against [base].  The row
    is marshalable, so this is what pool workers return.
    @raise Pp_vm.Interp.Trap *)
val measure_mode :
  ?budget:int ->
  ?engine:Pp_vm.Engine.kind ->
  base:base ->
  Pp_ir.Program.t ->
  Pp_instrument.Instrument.mode ->
  mode_row

(** Measure the baseline once, then every requested mode (default
    {!all_modes}), fanning out over {!Pp_run.Pool} when [jobs > 1].  A
    mode that traps or crashes lands in [failures] rather than aborting
    the report.  Deterministic: the simulated machine makes the report
    byte-identical at any [jobs]. *)
val compute :
  ?budget:int ->
  ?engine:Pp_vm.Engine.kind ->
  ?jobs:int ->
  ?modes:Pp_instrument.Instrument.mode list ->
  program:string ->
  Pp_ir.Program.t ->
  report

(** [Ok ()] iff, for every row, the per-category attributions sum
    exactly to the measured delta (cycles and instructions). *)
val check : report -> (unit, string) result

(** Table 1 (overhead), the attribution table (ending in
    ["attribution: ok"] when {!check} passes), and Table 2
    (perturbation of every event counter).  Deterministic. *)
val render : report -> string

(** The same report as JSON (for [--json] / [OVERHEAD.json]). *)
val to_json : report -> string
