(* Buckets cover the whole 63-bit range: bucket 0 is v <= 0, bucket k >= 1
   holds 2^(k-1) <= v < 2^k, so 63 buckets suffice. *)
let nbuckets = 64

type hist = { mutable hcount : int; mutable hsum : int; buckets : int array }

type cell =
  | Ccounter of int ref
  | Cgauge of int ref
  | Chist of hist

type t = { cells : (string, cell) Hashtbl.t }

type vsnap =
  | Counter of int
  | Gauge of int
  | Histogram of { count : int; sum : int; buckets : (int * int) list }

type snapshot = (string * vsnap) list

let create () = { cells = Hashtbl.create 64 }
let default = create ()
let reset t = Hashtbl.reset t.cells

let kind_error name =
  invalid_arg (Printf.sprintf "Metrics: %s is registered as another kind" name)

let incr t name n =
  match Hashtbl.find_opt t.cells name with
  | Some (Ccounter r) -> r := !r + n
  | Some _ -> kind_error name
  | None -> Hashtbl.replace t.cells name (Ccounter (ref n))

let set_gauge t name v =
  match Hashtbl.find_opt t.cells name with
  | Some (Cgauge r) -> r := v
  | Some _ -> kind_error name
  | None -> Hashtbl.replace t.cells name (Cgauge (ref v))

let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 1 in
    while v lsr !k > 0 do k := !k + 1 done;
    !k
  end

let observe t name v =
  let h =
    match Hashtbl.find_opt t.cells name with
    | Some (Chist h) -> h
    | Some _ -> kind_error name
    | None ->
        let h = { hcount = 0; hsum = 0; buckets = Array.make nbuckets 0 } in
        Hashtbl.replace t.cells name (Chist h);
        h
  in
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let empty : snapshot = []

let snap_cell = function
  | Ccounter r -> Counter !r
  | Cgauge r -> Gauge !r
  | Chist h ->
      let buckets = ref [] in
      for b = nbuckets - 1 downto 0 do
        if h.buckets.(b) <> 0 then buckets := (b, h.buckets.(b)) :: !buckets
      done;
      Histogram { count = h.hcount; sum = h.hsum; buckets = !buckets }

let snapshot t =
  Hashtbl.fold (fun name c acc -> (name, snap_cell c) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let is_empty (s : snapshot) = s = []

(* Bucket lists are sparse assoc lists sorted by index; combine pointwise. *)
let combine_buckets op a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.filter_map (fun (i, v) -> keep i (op 0 v)) rest
    | rest, [] -> rest
    | (i, va) :: ra, (j, vb) :: rb ->
        if i < j then (i, va) :: go ra b
        else if j < i then prepend j (op 0 vb) (go a rb)
        else prepend i (op va vb) (go ra rb)
  and keep i v = if v = 0 then None else Some (i, v)
  and prepend i v rest = match keep i v with None -> rest | Some c -> c :: rest
  in
  go a b

let merge_cell name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (max x y)
  | Histogram a, Histogram b ->
      Histogram
        {
          count = a.count + b.count;
          sum = a.sum + b.sum;
          buckets = combine_buckets ( + ) a.buckets b.buckets;
        }
  | _ -> kind_error name

let merge (a : snapshot) (b : snapshot) : snapshot =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | ((na, va) as ca) :: ra, ((nb, vb) as cb) :: rb ->
        if na < nb then ca :: go ra b
        else if nb < na then cb :: go a rb
        else (na, merge_cell na va vb) :: go ra rb
  in
  go a b

let diff_cell name after before =
  match (after, before) with
  | Counter a, Counter b -> if a = b then None else Some (Counter (a - b))
  | Gauge a, Gauge b -> if a = b then None else Some (Gauge a)
  | Histogram a, Histogram b ->
      if a.count = b.count && a.sum = b.sum && a.buckets = b.buckets then None
      else
        Some
          (Histogram
             {
               count = a.count - b.count;
               sum = a.sum - b.sum;
               buckets = combine_buckets ( - ) a.buckets b.buckets;
             })
  | _ -> kind_error name

let diff (after : snapshot) (before : snapshot) : snapshot =
  let rec go after before =
    match (after, before) with
    | rest, [] -> rest
    | [], _ -> []  (* a reset registry never shrinks in practice *)
    | ((na, va) as ca) :: ra, (nb, vb) :: rb ->
        if na < nb then ca :: go ra before
        else if nb < na then go after rb
        else (
          match diff_cell na va vb with
          | Some v -> (na, v) :: go ra rb
          | None -> go ra rb)
  in
  go after before

let absorb t (s : snapshot) =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> incr t name n
      | Gauge g -> (
          match Hashtbl.find_opt t.cells name with
          | Some (Cgauge r) -> r := max !r g
          | Some _ -> kind_error name
          | None -> Hashtbl.replace t.cells name (Cgauge (ref g)))
      | Histogram { count; sum; buckets } -> (
          match Hashtbl.find_opt t.cells name with
          | Some (Chist h) ->
              h.hcount <- h.hcount + count;
              h.hsum <- h.hsum + sum;
              List.iter
                (fun (b, n) -> h.buckets.(b) <- h.buckets.(b) + n)
                buckets
          | Some _ -> kind_error name
          | None ->
              let h =
                { hcount = count; hsum = sum; buckets = Array.make nbuckets 0 }
              in
              List.iter (fun (b, n) -> h.buckets.(b) <- n) buckets;
              Hashtbl.replace t.cells name (Chist h)))
    s

let dump (s : snapshot) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      (match v with
      | Counter n -> Printf.bprintf buf "counter %s %d" name n
      | Gauge g -> Printf.bprintf buf "gauge %s %d" name g
      | Histogram { count; sum; buckets } ->
          Printf.bprintf buf "hist %s count=%d sum=%d" name count sum;
          List.iter (fun (b, n) -> Printf.bprintf buf " b%d=%d" b n) buckets);
      Buffer.add_char buf '\n')
    s;
  Buffer.contents buf
