(** Structured self-tracing: a cheap in-memory ring of typed events.

    The profiler that measures everything could not, until now, measure
    itself.  A [Trace.t] is a bounded ring of span begin/end pairs, counter
    samples and instant markers with monotonic-ish timestamps, recorded by
    the driver, the VM and the pool while a session runs.  Two exporters
    read it back: Chrome [trace_event] JSON (loadable in about://tracing /
    Perfetto) and a compact indented text form.

    Cost discipline: {!null} is a permanently disabled sink — every record
    call on it is a single load-and-branch — so instrumented call sites can
    stay in place in production paths.  Call sites that would do work to
    {e build} an event (allocate a label, read counters) must additionally
    guard with {!enabled}. *)

type t

type event =
  | Begin of { name : string; ts : float }  (** span opens; [ts] seconds *)
  | End of { name : string; ts : float }  (** innermost span closes *)
  | Counter of { name : string; ts : float; values : (string * int) list }
  | Instant of { name : string; ts : float }

(** [create ()] makes an enabled trace.  [clock] supplies absolute times in
    seconds (default [Unix.gettimeofday]; inject a fake for deterministic
    tests); timestamps are stored relative to creation.  [capacity] bounds
    the ring (default 65536 events); when full, the oldest event is
    dropped and {!dropped} counts it.
    @raise Invalid_argument if [capacity <= 0]. *)
val create : ?clock:(unit -> float) -> ?capacity:int -> unit -> t

(** The no-op sink: disabled forever, records nothing, exports empty. *)
val null : t

val enabled : t -> bool

(** Current span nesting depth (begins minus ends so far). *)
val depth : t -> int

(** Events dropped by the full ring. *)
val dropped : t -> int

(** Recorded events, oldest first. *)
val events : t -> event list

val begin_span : t -> string -> unit
val end_span : t -> string -> unit

(** [with_span t name f] brackets [f ()] in a span; the end event is
    recorded even when [f] raises. *)
val with_span : t -> string -> (unit -> 'a) -> 'a

(** [counter t name values] records a multi-value counter sample. *)
val counter : t -> string -> (string * int) list -> unit

val instant : t -> string -> unit

(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]).  The exporter
    repairs ring truncation so the output always carries balanced B/E
    pairs: an [End] whose [Begin] was dropped is omitted, and a span still
    open at export gets a synthetic [End] at the last timestamp. *)
val to_chrome_json : t -> string

(** Compact indented text: one line per span (with duration), counter
    sample and instant, in event order. *)
val to_text : t -> string
