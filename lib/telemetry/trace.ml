type event =
  | Begin of { name : string; ts : float }
  | End of { name : string; ts : float }
  | Counter of { name : string; ts : float; values : (string * int) list }
  | Instant of { name : string; ts : float }

type t = {
  on : bool;
  clock : unit -> float;
  t0 : float;
  ring : event array;  (* length 0 iff disabled *)
  mutable next : int;  (* insertion cursor *)
  mutable count : int;  (* live events, <= capacity *)
  mutable dropped : int;
  mutable depth : int;
}

let dummy = Instant { name = ""; ts = 0.0 }

let create ?(clock = Unix.gettimeofday) ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  {
    on = true;
    clock;
    t0 = clock ();
    ring = Array.make capacity dummy;
    next = 0;
    count = 0;
    dropped = 0;
    depth = 0;
  }

let null =
  {
    on = false;
    clock = (fun () -> 0.0);
    t0 = 0.0;
    ring = [||];
    next = 0;
    count = 0;
    dropped = 0;
    depth = 0;
  }

let enabled t = t.on
let depth t = t.depth
let dropped t = t.dropped

let now t = t.clock () -. t.t0

let push t e =
  let cap = Array.length t.ring in
  t.ring.(t.next) <- e;
  t.next <- (t.next + 1) mod cap;
  if t.count < cap then t.count <- t.count + 1 else t.dropped <- t.dropped + 1

let begin_span t name =
  if t.on then begin
    t.depth <- t.depth + 1;
    push t (Begin { name; ts = now t })
  end

let end_span t name =
  if t.on then begin
    t.depth <- max 0 (t.depth - 1);
    push t (End { name; ts = now t })
  end

let with_span t name f =
  if not t.on then f ()
  else begin
    begin_span t name;
    Fun.protect ~finally:(fun () -> end_span t name) f
  end

let counter t name values =
  if t.on then push t (Counter { name; ts = now t; values })

let instant t name = if t.on then push t (Instant { name; ts = now t })

let events t =
  let cap = Array.length t.ring in
  if cap = 0 || t.count = 0 then []
  else
    let first = (t.next - t.count + (2 * cap)) mod cap in
    List.init t.count (fun i -> t.ring.((first + i) mod cap))

(* Ring truncation can orphan events: an [End] whose [Begin] was dropped,
   or a [Begin] still open at export time.  Exporters see a repaired
   sequence — orphan ends removed, open spans closed at the last
   timestamp — so the B/E pairing is always balanced.  Matching by order
   is sound because spans are strictly nested (single-threaded). *)
let balanced_events t =
  let evs = events t in
  let last_ts =
    List.fold_left
      (fun acc e ->
        match e with
        | Begin { ts; _ } | End { ts; _ } | Counter { ts; _ }
        | Instant { ts; _ } ->
            Float.max acc ts)
      0.0 evs
  in
  let rev, open_spans =
    List.fold_left
      (fun (acc, stack) e ->
        match e with
        | Begin { name; _ } -> (e :: acc, name :: stack)
        | End _ -> (
            match stack with
            | _ :: rest -> (e :: acc, rest)
            | [] -> (acc, []) (* orphan: its Begin fell off the ring *))
        | Counter _ | Instant _ -> (e :: acc, stack))
      ([], []) evs
  in
  let closers = List.map (fun name -> End { name; ts = last_ts }) open_spans in
  List.rev_append rev closers

(* {2 Chrome trace_event export} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let usec ts = ts *. 1e6

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf s)
      fmt
  in
  List.iter
    (fun e ->
      match e with
      | Begin { name; ts } ->
          emit
            "{\"name\":\"%s\",\"cat\":\"pp\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":1}"
            (json_escape name) (usec ts)
      | End { name; ts } ->
          emit
            "{\"name\":\"%s\",\"cat\":\"pp\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":1}"
            (json_escape name) (usec ts)
      | Counter { name; ts; values } ->
          let args =
            String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
                 values)
          in
          emit
            "{\"name\":\"%s\",\"cat\":\"pp\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{%s}}"
            (json_escape name) (usec ts) args
      | Instant { name; ts } ->
          emit
            "{\"name\":\"%s\",\"cat\":\"pp\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"s\":\"t\"}"
            (json_escape name) (usec ts))
    (balanced_events t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* {2 Compact text export} *)

let to_text t =
  let buf = Buffer.create 1024 in
  let line depth fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let depth = ref 0 in
  (* Duration of each span: match ends to begins by nesting order. *)
  let stack = ref [] in
  List.iter
    (fun e ->
      match e with
      | Begin { name; ts } ->
          line !depth "[%9.3fms] %s" (ts *. 1e3) name;
          stack := ts :: !stack;
          incr depth
      | End { name; ts } ->
          decr depth;
          let t0 =
            match !stack with
            | t0 :: rest ->
                stack := rest;
                t0
            | [] -> ts
          in
          line !depth "[%9.3fms] %s done (%.3fms)" (ts *. 1e3) name
            ((ts -. t0) *. 1e3)
      | Counter { name; ts; values } ->
          line !depth "[%9.3fms] counter %s %s" (ts *. 1e3) name
            (String.concat " "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) values))
      | Instant { name; ts } ->
          line !depth "[%9.3fms] instant %s" (ts *. 1e3) name)
    (balanced_events t);
  if t.dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d events dropped by the full ring)\n" t.dropped);
  Buffer.contents buf
