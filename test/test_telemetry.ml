(* The self-telemetry layer: span nesting and ring-truncation repair in
   the tracer, the metrics merge algebra (the same laws Profile.merge
   obeys, over counters / gauges / histograms), the pool's metrics pipe
   protocol, largest-remainder apportionment in the overhead accountant,
   and the zero-perturbation guard: a session traced with telemetry must
   produce a byte-identical path profile to an untraced one. *)

module Trace = Pp_telemetry.Trace
module Metrics = Pp_telemetry.Metrics
module Overhead = Pp_overhead.Overhead
module Pool = Pp_run.Pool
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Profile_io = Pp_core.Profile_io

(* A clock that ticks 1ms per call: the first call (creation) reads 0,
   so event n lands at exactly n milliseconds. *)
let ticking_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 0.001;
    v

let count_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let json_balanced j = count_sub j "\"ph\":\"B\"" = count_sub j "\"ph\":\"E\""

(* {2 Tracer} *)

let test_span_nesting () =
  let tr = Trace.create ~clock:(ticking_clock ()) () in
  let r =
    Trace.with_span tr "outer" (fun () ->
        Trace.with_span tr "inner" (fun () -> 42))
  in
  Alcotest.(check int) "with_span passes the value through" 42 r;
  Alcotest.(check int) "depth returns to zero" 0 (Trace.depth tr);
  let shape =
    List.map
      (function
        | Trace.Begin { name; _ } -> "B:" ^ name
        | Trace.End { name; _ } -> "E:" ^ name
        | Trace.Counter { name; _ } -> "C:" ^ name
        | Trace.Instant { name; _ } -> "I:" ^ name)
      (Trace.events tr)
  in
  Alcotest.(check (list string))
    "spans nest" [ "B:outer"; "B:inner"; "E:inner"; "E:outer" ] shape

let test_span_end_on_raise () =
  let tr = Trace.create ~clock:(ticking_clock ()) () in
  (try Trace.with_span tr "doomed" (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "depth unwound" 0 (Trace.depth tr);
  Alcotest.(check int) "begin and end recorded" 2
    (List.length (Trace.events tr))

let test_null_records_nothing () =
  Trace.begin_span Trace.null "a";
  Trace.counter Trace.null "c" [ ("x", 1) ];
  Trace.instant Trace.null "i";
  Trace.end_span Trace.null "a";
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null);
  Alcotest.(check (list unit)) "no events" []
    (List.map ignore (Trace.events Trace.null));
  Alcotest.(check string) "empty export"
    "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
    (Trace.to_chrome_json Trace.null)

let test_trace_golden () =
  let tr = Trace.create ~clock:(ticking_clock ()) () in
  Trace.begin_span tr "compile";
  Trace.counter tr "vm" [ ("cycles", 42) ];
  Trace.instant tr "trap";
  Trace.end_span tr "compile";
  Alcotest.(check string) "text export"
    "[    1.000ms] compile\n\
    \  [    2.000ms] counter vm cycles=42\n\
    \  [    3.000ms] instant trap\n\
     [    4.000ms] compile done (3.000ms)\n"
    (Trace.to_text tr);
  Alcotest.(check string) "chrome export"
    ("{\"traceEvents\":["
   ^ "{\"name\":\"compile\",\"cat\":\"pp\",\"ph\":\"B\",\"ts\":1000.000,\"pid\":1,\"tid\":1},"
   ^ "{\"name\":\"vm\",\"cat\":\"pp\",\"ph\":\"C\",\"ts\":2000.000,\"pid\":1,\"tid\":1,\"args\":{\"cycles\":42}},"
   ^ "{\"name\":\"trap\",\"cat\":\"pp\",\"ph\":\"i\",\"ts\":3000.000,\"pid\":1,\"tid\":1,\"s\":\"t\"},"
   ^ "{\"name\":\"compile\",\"cat\":\"pp\",\"ph\":\"E\",\"ts\":4000.000,\"pid\":1,\"tid\":1}"
   ^ "],\"displayTimeUnit\":\"ms\"}")
    (Trace.to_chrome_json tr)

let test_truncation_repair () =
  (* A tiny ring drops the Begin of the first span; its orphan End must
     not reach the export. *)
  let tr = Trace.create ~clock:(ticking_clock ()) ~capacity:3 () in
  Trace.begin_span tr "a";
  Trace.begin_span tr "b";
  Trace.end_span tr "b";
  Trace.end_span tr "a";
  Alcotest.(check int) "one event dropped" 1 (Trace.dropped tr);
  let j = Trace.to_chrome_json tr in
  Alcotest.(check bool) "orphan end repaired" true (json_balanced j);
  (* Spans still open at export get synthetic closers. *)
  let tr = Trace.create ~clock:(ticking_clock ()) () in
  Trace.begin_span tr "open1";
  Trace.begin_span tr "open2";
  Trace.instant tr "mark";
  let j = Trace.to_chrome_json tr in
  Alcotest.(check int) "both ends synthesized" 2 (count_sub j "\"ph\":\"E\"");
  Alcotest.(check bool) "balanced" true (json_balanced j)

(* Random walks over open/close decisions, replayed onto rings of random
   capacity: whatever the ring dropped, the export stays balanced. *)
let prop_spans_balanced =
  QCheck.Test.make ~name:"trace export is B/E-balanced under truncation"
    ~count:200
    QCheck.(pair (small_list small_nat) (int_range 1 12))
    (fun (walk, capacity) ->
      let tr = Trace.create ~clock:(ticking_clock ()) ~capacity () in
      List.iter
        (fun step ->
          if step mod 2 = 0 then
            Trace.begin_span tr (Printf.sprintf "s%d" (step / 2))
          else if Trace.depth tr > 0 then Trace.end_span tr "s"
          else Trace.instant tr "i")
        walk;
      json_balanced (Trace.to_chrome_json tr)
      && Trace.to_text tr <> "no"
      (* to_text must not raise on the same repaired stream *))

(* {2 Metrics algebra} *)

(* Snapshots are generated by replaying random operations against a fresh
   registry, so every generated value is reachable through the public
   API.  Names are drawn from a fixed pool with fixed kinds so merges
   never see a kind mismatch. *)
type op = Op_incr of int * int | Op_gauge of int * int | Op_obs of int * int

let apply_op r = function
  | Op_incr (i, n) -> Metrics.incr r (Printf.sprintf "c.%d" (i mod 3)) n
  | Op_gauge (i, n) -> Metrics.set_gauge r (Printf.sprintf "g.%d" (i mod 2)) n
  | Op_obs (i, n) -> Metrics.observe r (Printf.sprintf "h.%d" (i mod 3)) n

let snapshot_of_ops ops =
  let r = Metrics.create () in
  List.iter (apply_op r) ops;
  Metrics.snapshot r

let gen_op =
  QCheck.Gen.(
    map2
      (fun k (i, n) ->
        match k mod 3 with
        | 0 -> Op_incr (i, n)
        | 1 -> Op_gauge (i, n)
        | _ -> Op_obs (i, n))
      (int_bound 2)
      (pair (int_bound 5) (int_bound 1000)))

let arb_ops = QCheck.make QCheck.Gen.(small_list gen_op)
let arb_snapshot = QCheck.map snapshot_of_ops arb_ops

let prop_merge_commutes =
  QCheck.Test.make ~name:"metrics merge commutes" ~count:200
    QCheck.(pair arb_snapshot arb_snapshot)
    (fun (a, b) -> Metrics.merge a b = Metrics.merge b a)

let prop_merge_assoc =
  QCheck.Test.make ~name:"metrics merge associates" ~count:200
    QCheck.(triple arb_snapshot arb_snapshot arb_snapshot)
    (fun (a, b, c) ->
      Metrics.merge a (Metrics.merge b c) = Metrics.merge (Metrics.merge a b) c)

let prop_merge_identity =
  QCheck.Test.make ~name:"empty is the merge identity" ~count:200 arb_snapshot
    (fun a ->
      Metrics.merge a Metrics.empty = a && Metrics.merge Metrics.empty a = a)

(* The pool protocol's correctness law: what a worker recorded after the
   fork, merged back into the parent's state, reconstructs the worker's
   final state.  Gauges are excluded — diff keeps the absolute [after]
   value, so the law holds for them only when they grow monotonically. *)
let prop_diff_merge_roundtrip =
  QCheck.Test.make ~name:"merge (diff after before) before = after"
    ~count:200
    QCheck.(pair arb_ops arb_ops)
    (fun (ops1, ops2) ->
      let monotone =
        List.filter (function Op_gauge _ -> false | _ -> true)
      in
      let r = Metrics.create () in
      List.iter (apply_op r) (monotone ops1);
      let before = Metrics.snapshot r in
      List.iter (apply_op r) (monotone ops2);
      let after = Metrics.snapshot r in
      Metrics.merge (Metrics.diff after before) before = after)

let test_bucket_of () =
  Alcotest.(check int) "zero" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative" 0 (Metrics.bucket_of (-7));
  Alcotest.(check int) "one" 1 (Metrics.bucket_of 1);
  List.iter
    (fun v ->
      let k = Metrics.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "2^(k-1) <= %d < 2^k" v)
        true
        (k >= 1 && (1 lsl (k - 1)) <= v && v < 1 lsl k))
    [ 1; 2; 3; 4; 5; 7; 8; 100; 1023; 1024; 1 lsl 40 ]

let test_dump_golden () =
  let r = Metrics.create () in
  Metrics.incr r "pool.tasks" 18;
  Metrics.set_gauge r "run.shards" 4;
  Metrics.observe r "matrix.cycles" 5;
  Metrics.observe r "matrix.cycles" 100;
  Alcotest.(check string) "canonical dump"
    "hist matrix.cycles count=2 sum=105 b3=1 b7=1\n\
     counter pool.tasks 18\n\
     gauge run.shards 4\n"
    (Metrics.dump (Metrics.snapshot r))

let test_absorb_equals_merge () =
  let a = snapshot_of_ops [ Op_incr (0, 3); Op_obs (1, 9); Op_gauge (0, 2) ] in
  let b = snapshot_of_ops [ Op_incr (0, 4); Op_obs (1, 17); Op_gauge (0, 7) ] in
  let r = Metrics.create () in
  Metrics.absorb r a;
  Metrics.absorb r b;
  Alcotest.(check string) "absorb = merge"
    (Metrics.dump (Metrics.merge a b))
    (Metrics.dump (Metrics.snapshot r))

let test_merge_kind_mismatch () =
  match
    Metrics.merge
      [ ("x", Metrics.Counter 1) ]
      [ ("x", Metrics.Gauge 1) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"

(* {2 The pool pipe protocol} *)

let test_pool_oversized_payload () =
  (* 8 MB is two orders of magnitude past the pipe buffer: the payload
     arrives as dozens of partial reads which the drain loop must
     reassemble, never tear. *)
  let big = 8 * 1024 * 1024 in
  let outcomes = Pool.map ~jobs:2 (fun n -> String.make n 'x') [ big; 64 ] in
  match outcomes with
  | [ Pool.Done a; Pool.Done b ] ->
      Alcotest.(check int) "oversized payload intact" big (String.length a);
      Alcotest.(check bool) "content intact" true (a = String.make big 'x');
      Alcotest.(check int) "small payload intact" 64 (String.length b)
  | _ ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; " (List.map Pool.describe outcomes))

let metric_task i =
  Metrics.incr Metrics.default "task.count" 1;
  Metrics.observe Metrics.default "task.square" (i * i);
  i

let test_pool_metrics_jobs_independent () =
  let run jobs =
    Metrics.reset Metrics.default;
    let _ = Pool.map_stats ~jobs metric_task [ 1; 2; 3; 4; 5; 6 ] in
    Metrics.dump (Metrics.snapshot Metrics.default)
  in
  let serial = run 1 in
  let forked = run 3 in
  Alcotest.(check string) "dumps byte-identical at any jobs" serial forked;
  Alcotest.(check bool) "task metrics flowed back" true
    (count_sub forked "counter task.count 6" = 1)

let test_pool_metrics_no_double_count () =
  (* Values inherited from the parent at fork time must not be re-added
     when the worker's delta comes back. *)
  Metrics.reset Metrics.default;
  Metrics.incr Metrics.default "task.count" 3;
  let _ = Pool.map ~jobs:2 metric_task [ 1; 2; 3; 4 ] in
  let s = Metrics.snapshot Metrics.default in
  match List.assoc "task.count" s with
  | Metrics.Counter n -> Alcotest.(check int) "3 inherited + 4 new" 7 n
  | _ -> Alcotest.fail "task.count is not a counter"

(* {2 Overhead accounting} *)

let prop_apportion_exact =
  QCheck.Test.make ~name:"apportionment sums exactly to the total" ~count:500
    QCheck.(pair (int_range (-5000) 5000) (array_of_size Gen.(int_range 1 6)
                                             (float_range 0.0 50.0)))
    (fun (total, weights) ->
      let shares = Overhead.apportion ~total weights in
      Array.length shares = Array.length weights
      && Array.fold_left ( + ) 0 shares = total)

let test_apportion_zero_weights () =
  Alcotest.(check (array int)) "all on the last index" [| 0; 0; 7 |]
    (Overhead.apportion ~total:7 [| 0.0; 0.0; 0.0 |])

let src =
  {|
int acc;
int step(int x) {
  if (x % 2 == 0) { return x / 2; }
  return 3 * x + 1;
}
void main() {
  int i;
  for (i = 1; i < 12; i = i + 1) {
    int n = i;
    while (n != 1) { n = step(n); }
    acc = acc + n;
  }
  print(acc);
}
|}

let program = lazy (Pp_minic.Compile.program ~name:"telemetry_fixture" src)

let test_overhead_exact_attribution () =
  let r =
    Overhead.compute ~budget:50_000_000
      ~modes:[ Instrument.Flow_hw; Instrument.Edge_freq ]
      ~program:"telemetry_fixture" (Lazy.force program)
  in
  Alcotest.(check (list (pair string string))) "no failures" [] r.failures;
  (match Overhead.check r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "attribution mismatch: %s" msg);
  List.iter
    (fun (row : Overhead.mode_row) ->
      let sum f = List.fold_left (fun a x -> a + f x) 0 row.attributions in
      Alcotest.(check int)
        (row.mode ^ " cycles attributed exactly")
        row.delta_cycles
        (sum (fun (a : Overhead.attribution) -> a.cycles));
      Alcotest.(check int)
        (row.mode ^ " instructions attributed exactly")
        row.delta_instructions
        (sum (fun (a : Overhead.attribution) -> a.instructions)))
    r.rows;
  Alcotest.(check bool) "render carries the CI gate line" true
    (count_sub (Overhead.render r) "attribution: ok" = 1)

(* {2 Zero-perturbation guard} *)

let test_no_telemetry_byte_identical () =
  let prog = Lazy.force program in
  let profile_with session =
    ignore (Driver.run session);
    Profile_io.to_string
      (Profile_io.of_profile
         ~program_hash:(Profile_io.program_hash prog)
         ~mode:(Instrument.mode_name Instrument.Flow_hw)
         (Driver.path_profile session))
  in
  let plain =
    profile_with
      (Driver.prepare ~max_instructions:50_000_000 ~mode:Instrument.Flow_hw
         prog)
  in
  let tr = Trace.create () in
  let traced =
    profile_with
      (Driver.prepare ~max_instructions:50_000_000 ~mode:Instrument.Flow_hw
         ~telemetry:tr ~telemetry_interval:10_000 prog)
  in
  Alcotest.(check string) "profiles byte-identical under telemetry" plain
    traced;
  Alcotest.(check bool) "the trace did record the session" true
    (Trace.events tr <> [])

let suite =
  [
    Alcotest.test_case "spans nest and balance" `Quick test_span_nesting;
    Alcotest.test_case "with_span closes on raise" `Quick
      test_span_end_on_raise;
    Alcotest.test_case "null sink records nothing" `Quick
      test_null_records_nothing;
    Alcotest.test_case "deterministic exports (fake clock)" `Quick
      test_trace_golden;
    Alcotest.test_case "ring truncation repaired" `Quick
      test_truncation_repair;
    QCheck_alcotest.to_alcotest prop_spans_balanced;
    QCheck_alcotest.to_alcotest prop_merge_commutes;
    QCheck_alcotest.to_alcotest prop_merge_assoc;
    QCheck_alcotest.to_alcotest prop_merge_identity;
    QCheck_alcotest.to_alcotest prop_diff_merge_roundtrip;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_of;
    Alcotest.test_case "canonical dump golden" `Quick test_dump_golden;
    Alcotest.test_case "absorb agrees with merge" `Quick
      test_absorb_equals_merge;
    Alcotest.test_case "kind mismatch rejected" `Quick
      test_merge_kind_mismatch;
    Alcotest.test_case "oversized pool payload survives partial reads"
      `Quick test_pool_oversized_payload;
    Alcotest.test_case "pool metrics identical at any jobs" `Quick
      test_pool_metrics_jobs_independent;
    Alcotest.test_case "fork inheritance never double-counts" `Quick
      test_pool_metrics_no_double_count;
    QCheck_alcotest.to_alcotest prop_apportion_exact;
    Alcotest.test_case "zero weights fall to the last category" `Quick
      test_apportion_zero_weights;
    Alcotest.test_case "attribution sums exactly to the delta" `Quick
      test_overhead_exact_attribution;
    Alcotest.test_case "telemetry does not perturb the profile" `Quick
      test_no_telemetry_byte_identical;
  ]
