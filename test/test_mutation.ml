(* Mutation testing of the static verifier: corrupt instrumented code in
   ways that change what gets counted — drop a commit, bump an increment,
   skip a PIC restore — and require `pp check` to flag every mutant with a
   located diagnostic.  A verifier that misses a mutant would also bless a
   buggy instrumenter. *)

open Pp_ir
module Instrument = Pp_instrument.Instrument
module Verifier = Pp_analysis.Verifier

(* A program with both an acyclic branchy procedure (figure 1) and a loop,
   so mutants can target forward increments, backedge commits and return
   commits alike. *)
let program () =
  let main =
    let b =
      Builder.create ~name:"main" ~iparams:0 ~fparams:0
        ~returns:Proc.Returns_void
    in
    ignore (Builder.new_block b);
    let r = Builder.new_ireg b in
    Builder.emit b (Instr.Iconst (r, 3));
    Builder.emit_call b ~callee:"fig1" ~args:[ r ] ~fargs:[]
      ~ret:Instr.Rnone;
    Builder.emit_call b ~callee:"loop" ~args:[ r ] ~fargs:[]
      ~ret:Instr.Rnone;
    Builder.terminate b (Block.Ret Block.Ret_void);
    Builder.finish b
  in
  Program.make
    ~procs:[ main; Fixtures.figure1_proc (); Fixtures.loop_proc () ]
    ~globals:[] ~main:"main"

(* Rewrite the [n]-th instruction satisfying [select] across the whole
   program ([`Drop] or [`Replace]); returns the mutant and how many
   instructions matched in total. *)
let mutate prog ~n ~select ~action =
  let count = ref 0 in
  let mutant =
    Program.map_procs
      (fun p ->
        let blocks =
          Array.map
            (fun (b : Block.t) ->
              let instrs =
                List.filter_map
                  (fun i ->
                    if not (select i) then Some i
                    else begin
                      let k = !count in
                      incr count;
                      if k <> n then Some i
                      else
                        match action i with
                        | `Drop -> None
                        | `Replace i' -> Some i'
                    end)
                  b.Block.instrs
              in
              { b with Block.instrs })
            p.Proc.blocks
        in
        Proc.with_blocks p blocks)
      prog
  in
  (mutant, !count)

let instrument ?(options = Instrument.default_options) ~mode prog =
  Instrument.run ~options ~mode prog

(* Every mutant must produce at least one error, and every error must name
   a procedure (and, unless it is a whole-program finding, a block). *)
let expect_flagged ~what ~original ~manifest mutant =
  match Verifier.verify_program ~original ~manifest mutant with
  | [] -> Alcotest.failf "mutant not flagged: %s" what
  | diags ->
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.severity <> Diag.Error then
            Alcotest.failf "%s: non-error diagnostic %S" what
              (Diag.to_string d);
          if d.Diag.loc.Diag.proc = "" then
            Alcotest.failf "%s: diagnostic without a location" what)
        diags

(* Also insist the unmutated instrumentation verifies clean, so the
   mutation signal is meaningful. *)
let clean ?options ~mode () =
  let prog = program () in
  let instrumented, manifest = instrument ?options ~mode prog in
  (match Verifier.verify_program ~original:prog ~manifest instrumented with
  | [] -> ()
  | d ->
      Alcotest.failf "baseline not clean: %s"
        (String.concat "; " (List.map Diag.to_string d)));
  (prog, instrumented, manifest)

let run_mutation ?options ~mode ~what ~select ~action () =
  let prog, instrumented, manifest = clean ?options ~mode () in
  let mutant, total = mutate instrumented ~n:0 ~select ~action in
  if total = 0 then Alcotest.failf "no mutation site: %s" what;
  expect_flagged ~what ~original:prog ~manifest mutant

let is_self_add = function
  | Instr.Ibinop_imm (Instr.Add, rd, rs, _) -> rd = rs
  | _ -> false

let test_drop_freq_store () =
  (* array-table path commit: dropping the counter store loses the path *)
  run_mutation ~mode:Instrument.Flow_freq ~what:"drop commit store"
    ~select:(function Instr.Store _ -> true | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_drop_hash_commit () =
  let options = { Instrument.default_options with array_threshold = 0 } in
  run_mutation ~options ~mode:Instrument.Flow_freq ~what:"drop hash commit"
    ~select:(function
      | Instr.Prof (Instr.Path_commit_hash _) -> true
      | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_bump_increment () =
  run_mutation ~mode:Instrument.Flow_freq ~what:"bump path increment"
    ~select:is_self_add
    ~action:(function
      | Instr.Ibinop_imm (op, rd, rs, n) ->
          `Replace (Instr.Ibinop_imm (op, rd, rs, n + 1))
      | _ -> assert false)
    ()

let test_corrupt_reset () =
  (* Iconst r 0 sites are the path-register init and backedge resets *)
  run_mutation ~mode:Instrument.Flow_freq ~what:"corrupt init/reset"
    ~select:(function Instr.Iconst (_, 0) -> true | _ -> false)
    ~action:(function
      | Instr.Iconst (r, _) -> `Replace (Instr.Iconst (r, 1))
      | _ -> assert false)
    ()

let test_skip_pic_save () =
  run_mutation ~mode:Instrument.Flow_hw ~what:"skip PIC save"
    ~select:(function Instr.Hwread _ -> true | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_skip_pic_restore () =
  run_mutation ~mode:Instrument.Flow_hw ~what:"skip PIC restore"
    ~select:(function Instr.Hwwrite _ -> true | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_skip_hwzero () =
  run_mutation ~mode:Instrument.Flow_hw ~what:"skip counter zeroing"
    ~select:(function Instr.Hwzero -> true | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_drop_cct_exit () =
  run_mutation ~mode:Instrument.Context_hw ~what:"drop cct_exit"
    ~select:(function Instr.Prof Instr.Cct_exit -> true | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_drop_cct_call () =
  run_mutation ~mode:Instrument.Context_hw ~what:"drop cct_call"
    ~select:(function Instr.Prof (Instr.Cct_call _) -> true | _ -> false)
    ~action:(fun _ -> `Drop) ()

let test_drop_cct_commit () =
  run_mutation ~mode:Instrument.Context_flow ~what:"drop cct path commit"
    ~select:(function
      | Instr.Prof (Instr.Path_commit_cct _) -> true
      | _ -> false)
    ~action:(fun _ -> `Drop) ()

(* Every PIC read in flow-hw is load-bearing — the entry saves, the
   read-after-write idiom after the entry and backedge re-zeroing, and the
   per-commit readings — so dropping any single one must be flagged.  A
   deterministic sweep (the QCheck drop property only samples this space;
   the backedge idiom read was once missable). *)
let test_drop_any_pic_read () =
  let select = function Instr.Hwread _ -> true | _ -> false in
  let prog, instrumented, manifest = clean ~mode:Instrument.Flow_hw () in
  let _, total =
    mutate instrumented ~n:(-1) ~select ~action:(fun i -> `Replace i)
  in
  if total = 0 then Alcotest.fail "no PIC reads to mutate";
  for n = 0 to total - 1 do
    let mutant, _ = mutate instrumented ~n ~select ~action:(fun _ -> `Drop) in
    expect_flagged
      ~what:(Printf.sprintf "drop PIC read %d of %d" n total)
      ~original:prog ~manifest mutant
  done

let test_shift_edge_counter () =
  (* moving the edge counter store to a neighbouring cell counts the wrong
     edge: the chord's own counter is then missing *)
  run_mutation ~mode:Instrument.Edge_freq ~what:"shift edge counter"
    ~select:(function Instr.Store _ -> true | _ -> false)
    ~action:(function
      | Instr.Store (rs, rb, off) -> `Replace (Instr.Store (rs, rb, off + 8))
      | _ -> assert false)
    ()

(* Randomised sweep: every increment site, in both placements, bumped by a
   random delta, must be caught.  (Index and delta come from qcheck.) *)
let prop_any_increment =
  QCheck.Test.make ~name:"mutation: every corrupted increment is flagged"
    ~count:60
    QCheck.(triple (int_range 0 1000) (int_range 1 5) bool)
    (fun (idx, delta, optimized) ->
      let options =
        { Instrument.default_options with optimize_placement = optimized }
      in
      let prog = program () in
      let instrumented, manifest =
        instrument ~options ~mode:Instrument.Flow_freq prog
      in
      (* probe the number of sites, then hit idx mod total *)
      let _, total =
        mutate instrumented ~n:(-1) ~select:is_self_add
          ~action:(fun i -> `Replace i)
      in
      QCheck.assume (total > 0);
      let mutant, _ =
        mutate instrumented ~n:(idx mod total) ~select:is_self_add
          ~action:(function
            | Instr.Ibinop_imm (op, rd, rs, n) ->
                `Replace (Instr.Ibinop_imm (op, rd, rs, n + delta))
            | i -> `Replace i)
      in
      Verifier.verify_program ~original:prog ~manifest mutant <> [])

(* And dropping any single profiling side effect (store, prof op, hw op)
   must be caught in every mode. *)
let prop_any_drop =
  QCheck.Test.make ~name:"mutation: every dropped side effect is flagged"
    ~count:80
    QCheck.(pair (int_range 0 1000) (int_range 0 4))
    (fun (idx, mode_idx) ->
      let mode =
        List.nth
          [
            Instrument.Edge_freq;
            Instrument.Flow_freq;
            Instrument.Flow_hw;
            Instrument.Context_hw;
            Instrument.Context_flow;
          ]
          mode_idx
      in
      let select = function
        | Instr.Store _ | Instr.Prof _ | Instr.Hwzero | Instr.Hwread _
        | Instr.Hwwrite _ ->
            true
        | _ -> false
      in
      let prog = program () in
      let instrumented, manifest = instrument ~mode prog in
      let _, total =
        mutate instrumented ~n:(-1) ~select ~action:(fun i -> `Replace i)
      in
      QCheck.assume (total > 0);
      let mutant, _ =
        mutate instrumented ~n:(idx mod total) ~select ~action:(fun _ ->
            `Drop)
      in
      Verifier.verify_program ~original:prog ~manifest mutant <> [])

let suite =
  [
    Alcotest.test_case "drop commit store" `Quick test_drop_freq_store;
    Alcotest.test_case "drop hash commit" `Quick test_drop_hash_commit;
    Alcotest.test_case "bump increment" `Quick test_bump_increment;
    Alcotest.test_case "corrupt init/reset" `Quick test_corrupt_reset;
    Alcotest.test_case "skip PIC save" `Quick test_skip_pic_save;
    Alcotest.test_case "skip PIC restore" `Quick test_skip_pic_restore;
    Alcotest.test_case "skip hwzero" `Quick test_skip_hwzero;
    Alcotest.test_case "drop cct_exit" `Quick test_drop_cct_exit;
    Alcotest.test_case "drop cct_call" `Quick test_drop_cct_call;
    Alcotest.test_case "drop cct commit" `Quick test_drop_cct_commit;
    Alcotest.test_case "drop any PIC read" `Quick test_drop_any_pic_read;
    Alcotest.test_case "shift edge counter" `Quick test_shift_edge_counter;
    QCheck_alcotest.to_alcotest prop_any_increment;
    QCheck_alcotest.to_alcotest prop_any_drop;
  ]
