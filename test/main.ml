let () =
  Alcotest.run "ppcount"
    [
      ("graph", Test_graph.suite);
      ("dominators", Test_dominators.suite);
      ("machine", Test_machine.suite);
      ("ir", Test_ir.suite);
      ("ir_text", Test_ir_text.suite);
      ("vm", Test_vm.suite);
      ("ball_larus", Test_ball_larus.suite);
      ("cct", Test_cct.suite);
      ("cct_io", Test_cct_io.suite);
      ("edge_profile", Test_edge_profile.suite);
      ("hotpath", Test_hotpath.suite);
      ("static_weights", Test_static_weights.suite);
      ("profile", Test_profile.suite);
      ("minic_parse", Test_minic_parse.suite);
      ("minic_vm", Test_minic_vm.suite);
      ("instrument", Test_instrument.suite);
      ("editor", Test_editor.suite);
      ("sampling", Test_sampling.suite);
      ("random_programs", Test_random_programs.suite);
      ("workloads", Test_workloads.suite);
      ("dataflow", Test_dataflow.suite);
      ("graph_analysis", Test_graph_analysis.suite);
      ("feasibility", Test_feasibility.suite);
      ("check", Test_check.suite);
      ("mutation", Test_mutation.suite);
      ("absint", Test_absint.suite);
      ("merge", Test_merge.suite);
      ("sampled", Test_sampled.suite);
      ("serve", Test_serve.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("faults", Test_faults.suite);
      ("compile", Test_compile.suite);
      ("predict", Test_predict.suite);
    ]
