(* The profile-guided optimizer: unit tests per transform (block
   permutation, straightening, inlining safety and cost model, data
   placement with its empirical guard), an end-to-end check that an
   optimized program still certifies, and a QCheck property that the
   code transforms preserve output, traps and profiles on random
   programs, on both engines. *)

open Pp_ir
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Engine = Pp_vm.Engine
module Profile_io = Pp_core.Profile_io
module Summary = Pp_opt.Summary
module Reorder = Pp_opt.Reorder
module Inline = Pp_opt.Inline
module Data_layout = Pp_opt.Data_layout
module Pgo = Pp_opt.Pgo

(* --- block permutation --- *)

let test_permute_figure1 () =
  let p = Fixtures.figure1_proc () in
  (* Reverse layout: order.(i) = old label at new position i. *)
  let order = [| 5; 4; 3; 2; 1; 0 |] in
  let q = Reorder.permute p ~order in
  Alcotest.(check int) "block count" 6 (Proc.num_blocks q);
  Alcotest.(check int) "entry follows A" 5 q.Proc.entry;
  (* Old A (label 0) now sits at label 5 and still branches to old C
     (now 3) and old B (now 4). *)
  (match q.Proc.blocks.(5).Block.term with
  | Block.Br (0, 3, 4) -> ()
  | _ -> Alcotest.fail "A's branch was not remapped");
  (* Permuting back restores the original structure. *)
  let r = Reorder.permute q ~order in
  Array.iteri
    (fun i (b : Block.t) ->
      Alcotest.(check (list int))
        (Printf.sprintf "successors of L%d" i)
        (Block.successors p.Proc.blocks.(i))
        (Block.successors b))
    r.Proc.blocks

let test_layout_order () =
  let p = Fixtures.figure1_proc () in
  let weights = [| 10; 0; 5; 8; 0; 7 |] in
  let order =
    Reorder.layout_order ~weights ~hot_path:[ 0; 2; 3; 5 ] ~split_cold:true p
  in
  (* Hot path first, then warm blocks by weight, never-executed last. *)
  Alcotest.(check (list int))
    "hot path leads, cold blocks sink"
    [ 0; 2; 3; 5; 1; 4 ]
    (Array.to_list order)

let test_layout_order_no_split () =
  let p = Fixtures.figure1_proc () in
  let weights = [| 10; 0; 5; 8; 0; 7 |] in
  let order =
    Reorder.layout_order ~weights ~hot_path:[] ~split_cold:false p
  in
  (* Greedy by weight only; entry always first. *)
  Alcotest.(check int) "entry first" 0 order.(0)

(* --- straightening --- *)

let chain_proc () =
  let b =
    Builder.create ~name:"chain" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_int
  in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  assert (l0 = 0);
  Builder.emit b (Instr.Ibinop_imm (Instr.Add, 1, 0, 1));
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l1;
  Builder.emit b (Instr.Ibinop_imm (Instr.Add, 1, 1, 2));
  Builder.terminate b (Block.Jmp l2);
  Builder.switch_to b l2;
  Builder.terminate b (Block.Ret (Block.Ret_int 1));
  Builder.finish b

let test_straighten_chain () =
  let p, map = Reorder.straighten (chain_proc ()) in
  Alcotest.(check int) "one block remains" 1 (Proc.num_blocks p);
  Alcotest.(check (list int)) "all map to it" [ 0; 0; 0 ]
    (Array.to_list map);
  Alcotest.(check int) "instructions concatenated" 2
    (List.length p.Proc.blocks.(0).Block.instrs)

let test_straighten_diamond_untouched () =
  (* Figure 1 has no single-predecessor Jmp chain: C and E jump into
     merge points. *)
  let p, _ = Reorder.straighten (Fixtures.figure1_proc ()) in
  Alcotest.(check int) "still six blocks" 6 (Proc.num_blocks p)

(* --- inlining: a program with a clean, a stale-register and a wide
   callee --- *)

let ret_int r = Block.Ret (Block.Ret_int r)

let leaf_proc () =
  (* Safe: only reads its parameter. *)
  let b =
    Builder.create ~name:"leaf" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_int
  in
  let _ = Builder.new_block b in
  Builder.emit b (Instr.Ibinop_imm (Instr.Mul, 1, 0, 3));
  Builder.terminate b (ret_int 1);
  Builder.finish b

let stale_proc () =
  (* Reads r1 before writing it: zero in a fresh activation, stale once
     inlined — must be rejected. *)
  let b =
    Builder.create ~name:"stale" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_int
  in
  let _ = Builder.new_block b in
  Builder.emit b (Instr.Ibinop_imm (Instr.Add, 1, 1, 1));
  Builder.terminate b (ret_int 1);
  Builder.finish b

let wide_proc () =
  (* Three arguments: inlining costs more moves than the saved
     call/return fetches. *)
  let b =
    Builder.create ~name:"wide" ~iparams:3 ~fparams:0
      ~returns:Proc.Returns_int
  in
  let _ = Builder.new_block b in
  Builder.emit b (Instr.Ibinop (Instr.Add, 3, 0, 1));
  Builder.emit b (Instr.Ibinop (Instr.Add, 3, 3, 2));
  Builder.terminate b (ret_int 3);
  Builder.finish b

let inline_program () =
  let b =
    Builder.create ~name:"main" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
  in
  let _ = Builder.new_block b in
  Builder.emit b (Instr.Iconst (0, 7));
  Builder.emit_call b ~callee:"leaf" ~args:[ 0 ] ~fargs:[]
    ~ret:(Instr.Rint 1);
  Builder.emit_call b ~callee:"stale" ~args:[] ~fargs:[]
    ~ret:(Instr.Rint 2);
  Builder.emit_call b ~callee:"wide" ~args:[ 0; 1; 2 ] ~fargs:[]
    ~ret:(Instr.Rint 3);
  Builder.emit b (Instr.Print_int 1);
  Builder.emit b (Instr.Print_int 2);
  Builder.emit b (Instr.Print_int 3);
  Builder.terminate b (Block.Ret Block.Ret_void);
  let main = Builder.finish b in
  Program.make
    ~procs:[ main; leaf_proc (); stale_proc (); wide_proc () ]
    ~globals:[] ~main:"main"

let hot_summary_for prog sites =
  {
    Summary.source = Summary.Context_sensitive;
    procs =
      Array.to_list prog.Program.procs
      |> List.map (fun (p : Proc.t) ->
             ( p.Proc.name,
               {
                 Summary.weights = Array.make (Proc.num_blocks p) 1;
                 hot_path = [];
               } ));
    sites;
    callee_totals = [];
    global_heat = [];
  }

let test_inline_plan_safety () =
  let prog = inline_program () in
  let mk site callee =
    { Summary.caller = "main"; site; callee; calls = 500 }
  in
  let summary =
    hot_summary_for prog [ mk 0 "leaf"; mk 1 "stale"; mk 2 "wide" ]
  in
  let ds =
    Inline.plan ~summary ~max_callee_slots:48 ~min_calls:8
      ~budget_slots:512 prog
  in
  Alcotest.(check (list string))
    "only the clean single-argument callee is inlined" [ "leaf" ]
    (List.map (fun (d : Inline.decision) -> d.Inline.callee) ds)

let test_inline_apply_preserves_output () =
  let prog = inline_program () in
  let summary = hot_summary_for prog [
    { Summary.caller = "main"; site = 0; callee = "leaf"; calls = 500 } ]
  in
  let ds =
    Inline.plan ~summary ~max_callee_slots:48 ~min_calls:8
      ~budget_slots:512 prog
  in
  Alcotest.(check int) "one decision" 1 (List.length ds);
  let inlined = Inline.apply prog ds in
  Validate.run inlined;
  let out p = (Driver.run_baseline p).Interp.output in
  Alcotest.(check bool) "output preserved" true (out prog = out inlined);
  (* The call is gone from main. *)
  let calls (p : Proc.t) =
    let n = ref 0 in
    Proc.iter_instrs
      (fun _ i -> match i with Instr.Call _ -> incr n | _ -> ())
      p;
    !n
  in
  Alcotest.(check int) "one call fewer in main" 2
    (calls (Program.proc_exn inlined "main"))

(* --- data placement --- *)

let g name size = { Program.gname = name; size_words = size; init = None }

let data_program () =
  let b =
    Builder.create ~name:"main" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
  in
  let _ = Builder.new_block b in
  Builder.emit b (Instr.Iconst_sym (0, "cold"));
  Builder.emit b (Instr.Load (1, 0, 0));
  Builder.emit b (Instr.Print_int 1);
  Builder.terminate b (Block.Ret Block.Ret_void);
  Program.make
    ~procs:[ Builder.finish b ]
    ~globals:[ g "cold" 4; g "warm" 4; g "hot" 4 ]
    ~main:"main"

let global_names (p : Program.t) =
  Array.to_list p.Program.globals
  |> List.map (fun x -> x.Program.gname)

let test_data_place () =
  let prog = data_program () in
  let heat = [ ("hot", 100); ("warm", 10) ] in
  (* cold and hot swap ends; warm keeps its middle slot. *)
  Alcotest.(check int) "moved" 2 (Data_layout.moved ~heat prog);
  Alcotest.(check (list string))
    "hot first, unmeasured last"
    [ "hot"; "warm"; "cold" ]
    (global_names (Data_layout.place ~heat prog))

let test_data_validate_fallback () =
  let prog = data_program () in
  let summary =
    { (hot_summary_for prog []) with
      Summary.global_heat = [ ("hot", 100) ] }
  in
  let knobs =
    { Pgo.default_knobs with
      Pgo.layout = false; split_cold = false; straighten = false;
      inline = false }
  in
  let kept, r_kept =
    Pgo.optimize ~knobs ~validate:(fun _ -> true) ~summary prog
  in
  Alcotest.(check bool) "accepted placement moves globals" true
    (r_kept.Pgo.moved_globals > 0 && global_names kept <> global_names prog);
  let dropped, r_drop =
    Pgo.optimize ~knobs ~validate:(fun _ -> false) ~summary prog
  in
  Alcotest.(check bool) "rejected placement is dropped" true
    r_drop.Pgo.data_dropped;
  Alcotest.(check (list string))
    "globals untouched" (global_names prog) (global_names dropped)

(* --- end-to-end: optimize a MiniC program, then re-certify --- *)

let hot_src =
  {|
int grid[512];
int acc;

int weigh(int x) { return (x * 3 + 11) % 257; }

void sweep(int lo, int hi) {
  int i;
  for (i = lo; i < hi; i = i + 1) {
    grid[i] = grid[i] + weigh(i);
  }
}

void main() {
  int r;
  acc = 0;
  for (r = 0; r < 40; r = r + 1) { sweep(0, 512); }
  int j;
  for (j = 0; j < 512; j = j + 64) { acc = acc + grid[j]; }
  print(acc);
}
|}

let summarize prog =
  let session mode =
    let s = Driver.prepare ~max_instructions:400_000_000 ~mode prog in
    ignore (Driver.run s);
    s
  in
  let flow = session Instrument.Flow_hw in
  let ctx = session Instrument.Context_flow in
  Summary.of_paths ~cct:(Driver.cct ctx) prog (Driver.path_profile flow)

let all_modes =
  [
    Instrument.Edge_freq; Instrument.Flow_freq; Instrument.Flow_hw;
    Instrument.Context_hw; Instrument.Context_flow;
  ]

let test_optimize_certifies () =
  let prog = Pp_minic.Compile.program ~name:"hot" hot_src in
  let base = Driver.run_baseline prog in
  let validate p =
    match Driver.run_baseline p with
    | r -> r.Interp.output = base.Interp.output
    | exception Interp.Trap _ -> false
  in
  let optimized, report =
    Pgo.optimize ~validate ~summary:(summarize prog) prog
  in
  Alcotest.(check bool) "something was inlined" true
    (report.Pgo.inlined <> []);
  Alcotest.(check bool) "blocks were reordered" true
    (report.Pgo.reordered_procs > 0);
  let opt = Driver.run_baseline optimized in
  Alcotest.(check bool) "output preserved" true
    (opt.Interp.output = base.Interp.output);
  Alcotest.(check bool) "cycles improved" true
    (opt.Interp.cycles < base.Interp.cycles);
  (* The transformed program is an ordinary program: instrumentation in
     every mode still passes the full verifier and the abstract
     interpreter. *)
  List.iter
    (fun mode ->
      let instrumented, manifest = Instrument.run ~mode optimized in
      let diags =
        Pp_analysis.Verifier.verify_program ~original:optimized ~manifest
          instrumented
        @ Pp_analysis.Verifier.prove_program ~original:optimized ~manifest
            instrumented
      in
      Alcotest.(check int)
        (Instrument.mode_name mode ^ " certifies")
        0 (List.length diags))
    all_modes

let test_flat_summary_drives_pipeline () =
  let prog = Pp_minic.Compile.program ~name:"hot" hot_src in
  let edge =
    let s =
      Driver.prepare ~max_instructions:400_000_000
        ~mode:Instrument.Edge_freq prog
    in
    ignore (Driver.run s);
    List.map
      (fun (proc, plan, edges) -> (proc, Summary.block_counts plan edges))
      (Driver.edge_profile s)
  in
  let summary = Summary.of_edges prog edge in
  Alcotest.(check bool) "flat source" true
    (summary.Summary.source = Summary.Flat);
  let optimized, _ = Pgo.optimize ~summary prog in
  let out p = (Driver.run_baseline p).Interp.output in
  Alcotest.(check bool) "flat-driven output preserved" true
    (out prog = out optimized)

(* --- property: the code transforms preserve behaviour and profiles on
   random programs, both engines, all five modes --- *)

let observe ~kind mode prog =
  let s =
    Driver.prepare ~max_instructions:400_000_000 ~engine:kind ~mode prog
  in
  let tag =
    match Driver.run s with
    | _ -> "done"
    | exception Interp.Trap m -> m
  in
  let r = Interp.collect_result s.Driver.vm in
  let profile =
    match mode with
    | (Instrument.Flow_freq | Instrument.Flow_hw | Instrument.Context_flow)
      when tag = "done" ->
        Profile_io.to_string
          (Profile_io.of_profile
             ~program_hash:(Profile_io.program_hash prog)
             ~mode:(Instrument.mode_name mode)
             (Driver.path_profile s))
    | _ -> ""
  in
  (tag, r.Interp.output, profile)

let traversals prog =
  (* Entry-to-exit plus backedge traversals per procedure: invariant
     under any block permutation. *)
  let s =
    Driver.prepare ~max_instructions:400_000_000
      ~mode:Instrument.Flow_freq prog
  in
  ignore (Driver.run s);
  List.map
    (fun (p : Pp_core.Profile.proc_profile) ->
      ( p.Pp_core.Profile.proc,
        List.fold_left
          (fun acc (_, (m : Pp_core.Profile.path_metrics)) ->
            acc + m.Pp_core.Profile.freq)
          0 p.Pp_core.Profile.paths ))
    (Driver.path_profile s).Pp_core.Profile.procs
  |> List.sort compare

let prop_pgo_transparent =
  QCheck.Test.make
    ~name:
      "random programs: PGO preserves output, traps and profiles (both \
       engines, all modes)"
    ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Test_random_programs.gen_program seed in
      let prog = Pp_minic.Compile.program ~name:"gen" src in
      let base = Driver.run_baseline ~max_instructions:100_000_000 prog in
      let validate p =
        match Driver.run_baseline ~max_instructions:100_000_000 p with
        | r -> r.Interp.output = base.Interp.output
        | exception Interp.Trap _ -> false
      in
      (* Even seeds exercise the full pipeline; odd seeds isolate the
         reordering passes (superblock layout + hot/cold splitting). *)
      let knobs =
        if seed mod 2 = 0 then Pgo.default_knobs
        else
          { Pgo.default_knobs with Pgo.inline = false; straighten = false;
            data = false }
      in
      let optimized, _ =
        Pgo.optimize ~knobs ~validate ~summary:(summarize prog) prog
      in
      let opt_base = Driver.run_baseline ~max_instructions:100_000_000
          optimized in
      if opt_base.Interp.output <> base.Interp.output then
        QCheck.Test.fail_reportf "PGO changed program output:@.%s" src;
      if knobs.Pgo.inline = false && traversals optimized <> traversals prog
      then
        QCheck.Test.fail_reportf
          "block permutation changed path traversal counts:@.%s" src;
      List.for_all
        (fun mode ->
          let i = observe ~kind:Engine.Interpreted mode optimized in
          let c = observe ~kind:Engine.Compiled mode optimized in
          let tag, out, _ = i in
          i = c && tag = "done" && out = base.Interp.output)
        all_modes)

let suite =
  [
    Alcotest.test_case "permute figure1" `Quick test_permute_figure1;
    Alcotest.test_case "layout order: hot path first, cold sunk" `Quick
      test_layout_order;
    Alcotest.test_case "layout order: greedy without split" `Quick
      test_layout_order_no_split;
    Alcotest.test_case "straighten a jump chain" `Quick
      test_straighten_chain;
    Alcotest.test_case "straighten leaves merge points" `Quick
      test_straighten_diamond_untouched;
    Alcotest.test_case "inline plan: safety and cost model" `Quick
      test_inline_plan_safety;
    Alcotest.test_case "inline apply preserves output" `Quick
      test_inline_apply_preserves_output;
    Alcotest.test_case "data placement orders by heat" `Quick
      test_data_place;
    Alcotest.test_case "data placement honours the validate oracle" `Quick
      test_data_validate_fallback;
    Alcotest.test_case "optimized program re-certifies (check + prove)"
      `Slow test_optimize_certifies;
    Alcotest.test_case "flat summary drives the same pipeline" `Quick
      test_flat_summary_drives_pipeline;
    QCheck_alcotest.to_alcotest prop_pgo_transparent;
  ]
