(* Property tests for the PR-3 graph analyses: dominator/post-dominator
   trees, natural-loop discovery and nesting depth, and graph reversal.

   Dominance facts are checked against an independent brute-force oracle
   (d dominates v iff removing d disconnects v from the root), not against
   the algorithm's own definitions, so the properties would catch a wrong
   fixpoint and not just a crash. *)

module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Dominators = Pp_graph.Dominators
module Loops = Pp_graph.Loops
module Cfg = Pp_ir.Cfg

let cyclic_cfg seed = Cfg.of_proc (Fixtures.random_cyclic_proc ~seed ~n:8)
let dag_cfg seed = Cfg.of_proc (Fixtures.random_dag_proc ~seed ~n:8)

(* Vertices reachable from [root] without passing through [cut].  The
   brute-force dominance oracle: for [d <> v], [d] dominates [v] exactly
   when [v] is NOT in [reachable_avoiding g root d]. *)
let reachable_avoiding g ~root ~cut =
  let seen = Array.make (Digraph.num_vertices g) false in
  let rec go v =
    if v <> cut && not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (Digraph.succs g v)
    end
  in
  if root <> cut then go root;
  seen

let vertices g = List.init (Digraph.num_vertices g) Fun.id

let prop_dominators_oracle =
  QCheck.Test.make ~name:"dominates agrees with cut-vertex oracle" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let g = cfg.Cfg.graph and root = cfg.Cfg.entry in
      let dom = Dominators.compute g ~root in
      let from_root = reachable_avoiding g ~root ~cut:(-1) in
      List.for_all
        (fun d ->
          let cut = reachable_avoiding g ~root ~cut:d in
          List.for_all
            (fun v ->
              let expected =
                from_root.(v) && ((d = v && from_root.(d)) || not cut.(v))
              in
              Dominators.dominates dom d v = expected)
            (vertices g))
        (vertices g))

let prop_postdominators_oracle =
  QCheck.Test.make ~name:"post-dominates agrees with reversed oracle"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let g = cfg.Cfg.graph and exit = cfg.Cfg.exit in
      let pdom = Dominators.compute_post g ~exit in
      let rg = Digraph.reverse g in
      let to_exit = reachable_avoiding rg ~root:exit ~cut:(-1) in
      List.for_all
        (fun d ->
          let cut = reachable_avoiding rg ~root:exit ~cut:d in
          List.for_all
            (fun v ->
              let expected =
                to_exit.(v) && ((d = v && to_exit.(d)) || not cut.(v))
              in
              Dominators.dominates pdom d v = expected)
            (vertices g))
        (vertices g))

let prop_idom_is_strict_dominator =
  QCheck.Test.make
    ~name:"idom strictly dominates and appears in the chain" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let g = cfg.Cfg.graph and root = cfg.Cfg.entry in
      let dom = Dominators.compute g ~root in
      List.for_all
        (fun v ->
          match Dominators.idom dom v with
          | None -> true
          | Some d ->
              d <> v
              && Dominators.dominates dom d v
              && List.mem d (Dominators.dominator_chain dom v))
        (vertices g))

let prop_loops_well_formed =
  QCheck.Test.make ~name:"natural loops: headers dominate their bodies"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let g = cfg.Cfg.graph and root = cfg.Cfg.entry in
      let dom = Dominators.compute g ~root in
      let loops = Loops.analyze g ~root in
      Array.for_all
        (fun (l : Loops.loop) ->
          List.mem l.Loops.header l.Loops.body
          && List.for_all
               (fun (e : Digraph.edge) ->
                 e.Digraph.dst = l.Loops.header
                 && Dominators.dominates dom l.Loops.header e.Digraph.src)
               l.Loops.backedges
          && List.for_all
               (fun v -> Dominators.dominates dom l.Loops.header v)
               l.Loops.body)
        (Loops.loops loops))

let prop_loop_depth_is_containment_count =
  QCheck.Test.make
    ~name:"loop depth equals number of containing bodies" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let g = cfg.Cfg.graph and root = cfg.Cfg.entry in
      let loops = Loops.analyze g ~root in
      let arr = Loops.loops loops in
      List.for_all
        (fun v ->
          let containing =
            Array.to_list arr
            |> List.filter (fun (l : Loops.loop) -> List.mem v l.Loops.body)
          in
          Loops.depth loops v = List.length containing
          && (match Loops.innermost loops v with
             | None -> containing = []
             | Some i -> List.mem v (Loops.loops loops).(i).Loops.body))
        (vertices g))

let prop_loop_parent_strictly_contains =
  QCheck.Test.make ~name:"loop parent strictly contains the child"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let loops = Loops.analyze cfg.Cfg.graph ~root:cfg.Cfg.entry in
      let arr = Loops.loops loops in
      Array.for_all
        (fun (l : Loops.loop) ->
          match l.Loops.parent with
          | None -> l.Loops.depth = 1
          | Some p ->
              let pl = arr.(p) in
              pl.Loops.depth = l.Loops.depth - 1
              && List.for_all
                   (fun v -> List.mem v pl.Loops.body)
                   l.Loops.body
              && List.length pl.Loops.body > List.length l.Loops.body)
        arr)

let prop_dag_has_no_loops =
  QCheck.Test.make ~name:"acyclic CFGs have no natural loops" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = dag_cfg seed in
      let loops = Loops.analyze cfg.Cfg.graph ~root:cfg.Cfg.entry in
      Loops.num_loops loops = 0
      && List.for_all
           (fun v -> Loops.depth loops v = 0)
           (vertices cfg.Cfg.graph))

let prop_reverse_preserves_edge_ids =
  QCheck.Test.make
    ~name:"Digraph.reverse flips every edge, keeping its id" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cfg = cyclic_cfg seed in
      let g = cfg.Cfg.graph in
      let rg = Digraph.reverse g in
      Digraph.num_vertices rg = Digraph.num_vertices g
      && Digraph.num_edges rg = Digraph.num_edges g
      && Digraph.fold_edges
           (fun (e : Digraph.edge) acc ->
             let r = Digraph.edge rg e.Digraph.id in
             acc
             && r.Digraph.src = e.Digraph.dst
             && r.Digraph.dst = e.Digraph.src)
           g true)

(* Deterministic spot check on the shared loop fixtures: the nest shapes
   are known exactly. *)
let test_fixture_loops () =
  let cfg = Cfg.of_proc (Fixtures.two_backedges_proc ()) in
  let loops = Loops.analyze cfg.Cfg.graph ~root:cfg.Cfg.entry in
  Alcotest.(check int) "backedges merge into one loop" 1
    (Loops.num_loops loops);
  let l = (Loops.loops loops).(0) in
  Alcotest.(check int) "two backedges" 2 (List.length l.Loops.backedges);
  Alcotest.(check int) "depth 1" 1 l.Loops.depth;
  let header_label = Cfg.label_of_vertex cfg l.Loops.header in
  Alcotest.(check (option int)) "headed at L1" (Some 1) header_label

let test_fixture_post_dominators () =
  let cfg = Cfg.of_proc (Fixtures.figure1_proc ()) in
  let pdom = Dominators.compute_post cfg.Cfg.graph ~exit:cfg.Cfg.exit in
  (* Block F (the single return) post-dominates every block. *)
  let f = Cfg.vertex_of_label cfg 5 in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "F post-dominates L%d" l)
        true
        (Dominators.dominates pdom f (Cfg.vertex_of_label cfg l)))
    [ 0; 1; 2; 3; 4; 5 ];
  (* ...but E, on one arm of the D branch, post-dominates only itself. *)
  let e = Cfg.vertex_of_label cfg 4 in
  Alcotest.(check bool) "E does not post-dominate D" false
    (Dominators.dominates pdom e (Cfg.vertex_of_label cfg 3))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dominators_oracle;
      prop_postdominators_oracle;
      prop_idom_is_strict_dominator;
      prop_loops_well_formed;
      prop_loop_depth_is_containment_count;
      prop_loop_parent_strictly_contains;
      prop_dag_has_no_loops;
      prop_reverse_preserves_edge_ids;
    ]
  @ [
      Alcotest.test_case "fixture: two-backedge loop" `Quick
        test_fixture_loops;
      Alcotest.test_case "fixture: figure-1 post-dominators" `Quick
        test_fixture_post_dominators;
    ]
