(* The abstract-interpretation certifier (`pp prove`), attacked from four
   sides: domain algebra unit tests, zero false alarms on everything the
   instrumenter legitimately produces, seeded violations that must be
   flagged, and a runtime soundness oracle that checks VM-observed register
   values against the derived intervals on every executed block. *)

open Pp_ir
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Verifier = Pp_analysis.Verifier
module Absint = Pp_analysis.Absint
module Interval = Pp_analysis.Interval
module Congruence = Pp_analysis.Congruence
module Taint = Pp_analysis.Taint
module Constprop = Pp_analysis.Constprop
module Feasibility = Pp_analysis.Feasibility
module Registry = Pp_workloads.Registry
module Workload = Pp_workloads.Workload
module I = Instr

(* ---- domain unit tests ---- *)

let itv = Alcotest.testable Interval.pp Interval.equal
let cong = Alcotest.testable Congruence.pp Congruence.equal

let test_interval_algebra () =
  let mk = Interval.make in
  Alcotest.check itv "join" (mk 0 9) (Interval.join (mk 0 3) (mk 5 9));
  Alcotest.check itv "add" (mk 5 30)
    (Interval.binop ~no_wrap:true I.Add (mk 0 10) (mk 5 20));
  (* any possible concrete overflow collapses to top: saturation would be
     unsound under the VM's wrapping arithmetic *)
  let wide, ok =
    Interval.binop_report I.Add (mk 0 max_int) (mk 0 1)
  in
  Alcotest.check itv "add overflow" Interval.top wide;
  Alcotest.(check bool) "overflow reported" false ok;
  let prod, ok = Interval.binop_report I.Mul (mk 0 5) (mk 0 24) in
  Alcotest.check itv "mul" (mk 0 120) prod;
  Alcotest.(check bool) "mul no-wrap" true ok;
  Alcotest.check itv "shl as mul" (mk 0 80)
    (Interval.binop ~no_wrap:true I.Shl (mk 0 10) (Interval.const 3));
  Alcotest.check itv "shr" (mk 1 4)
    (Interval.binop ~no_wrap:true I.Shr (mk 8 32) (Interval.const 3));
  (* min_int / -1 wraps on the VM, so a divisor interval containing -1
     with min_int possible must not stay precise *)
  let d, _ =
    Interval.binop_report I.Div (mk min_int 0) (mk (-1) 1)
  in
  Alcotest.check itv "min_int / -1" Interval.top d;
  Alcotest.check itv "rem bound" (mk 0 9)
    (Interval.binop ~no_wrap:true I.Rem (mk 0 100) (Interval.const 10));
  Alcotest.check itv "cmp decided" (Interval.const 1)
    (Interval.cmp I.Lt (mk 0 3) (mk 5 9));
  Alcotest.check itv "cmp open" (mk 0 1)
    (Interval.cmp I.Lt (mk 0 6) (mk 5 9))

let test_interval_widen () =
  let mk = Interval.make in
  let w = Interval.widen (mk 0 10) (mk 0 16) in
  Alcotest.(check int) "stable bound kept" 0 (Interval.lo w);
  Alcotest.(check int) "moving bound gone" max_int (Interval.hi w);
  (* widening chains terminate: a second widening of a grown result is a
     fixpoint *)
  Alcotest.check itv "idempotent at top"
    (Interval.widen w (Interval.join w (mk (-5) 20)))
    (Interval.widen (Interval.widen w (Interval.join w (mk (-5) 20)))
       (Interval.join w (mk (-5) 20)))

let test_congruence_algebra () =
  let c = Congruence.const in
  (* join of distinct constants keeps the stride *)
  let j = Congruence.join (c 0) (c 24) in
  Alcotest.(check bool) "0 join 24 is 24-aligned" true
    (Congruence.divides 24 j);
  Alcotest.(check bool) "0 join 24 is 8-aligned" true (Congruence.divides 8 j);
  Alcotest.(check bool) "0 join 24 not 16-aligned" false
    (Congruence.divides 16 j);
  (* the table-offset idiom: unknown * 24 is still 8-byte aligned *)
  let off =
    Congruence.binop ~no_wrap:true I.Mul Congruence.top (c 24)
  in
  Alcotest.(check bool) "T * 24 divisible by 24" true
    (Congruence.divides 24 off);
  let sum = Congruence.binop ~no_wrap:true I.Add off (c 16) in
  Alcotest.(check bool) "24k + 16 is 8-aligned" true (Congruence.divides 8 sum);
  Alcotest.(check bool) "24k + 16 not 24-aligned" false
    (Congruence.divides 24 sum);
  (* without the no-wrap promise everything but const folding is top *)
  Alcotest.check cong "no promise, no fact" Congruence.top
    (Congruence.binop ~no_wrap:false I.Mul Congruence.top (c 24));
  (* const-const folding is the VM's own wrapping arithmetic *)
  Alcotest.check cong "wrapping fold"
    (c (max_int + max_int))
    (Congruence.binop ~no_wrap:false I.Add (c max_int) (c max_int));
  Alcotest.check cong "shl fold" (c 40)
    (Congruence.binop ~no_wrap:false I.Shl (c 5) (c 3))

(* ---- zero false alarms ---- *)

let all_modes =
  [
    Instrument.Edge_freq;
    Instrument.Flow_freq;
    Instrument.Flow_hw;
    Instrument.Context_hw;
    Instrument.Context_flow;
  ]

let prove ?(options = Instrument.default_options) ~mode prog =
  let instrumented, manifest =
    Instrument.run ~options ~pruner:Feasibility.pruner ~mode prog
  in
  (instrumented, manifest,
   Verifier.prove_program ~original:prog ~manifest instrumented)

(* The mutation-test program: an acyclic branchy procedure and a loop,
   called from main — forward increments, backedge commits and return
   commits all present. *)
let branchy_program () =
  let main =
    let b =
      Builder.create ~name:"main" ~iparams:0 ~fparams:0
        ~returns:Proc.Returns_void
    in
    ignore (Builder.new_block b);
    let r = Builder.new_ireg b in
    Builder.emit b (Instr.Iconst (r, 3));
    Builder.emit_call b ~callee:"fig1" ~args:[ r ] ~fargs:[]
      ~ret:Instr.Rnone;
    Builder.emit_call b ~callee:"loop" ~args:[ r ] ~fargs:[]
      ~ret:Instr.Rnone;
    Builder.terminate b (Block.Ret Block.Ret_void);
    Builder.finish b
  in
  Program.make
    ~procs:[ main; Fixtures.figure1_proc (); Fixtures.loop_proc () ]
    ~globals:[] ~main:"main"

let check_clean ~what diags =
  match diags with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "%s: false alarm: %s (%d total)" what (Diag.to_string d)
        (List.length diags)

let test_no_false_alarms_fixture () =
  let prog = branchy_program () in
  List.iter
    (fun mode ->
      let _, _, diags = prove ~mode prog in
      check_clean ~what:(Instrument.mode_name mode) diags)
    all_modes

let test_no_false_alarms_options () =
  let prog = branchy_program () in
  let variants =
    [
      ("optimized", { Instrument.default_options with
                      Instrument.optimize_placement = true });
      ("caller-saves", { Instrument.default_options with
                         Instrument.caller_saves = true });
      ("backedge-reads", { Instrument.default_options with
                           Instrument.backedge_metric_reads = true });
      (* force the path register into a frame slot everywhere: exercises
         the strong-update/escape-hull tracking *)
      ("spilled", { Instrument.default_options with
                    Instrument.spill_threshold = 0 });
    ]
  in
  List.iter
    (fun (name, options) ->
      List.iter
        (fun mode ->
          let _, _, diags = prove ~options ~mode prog in
          check_clean
            ~what:(name ^ "/" ^ Instrument.mode_name mode)
            diags)
        all_modes)
    variants

let test_no_false_alarms_workloads () =
  List.iter
    (fun wname ->
      let prog =
        Workload.compile (Option.get (Registry.find wname))
      in
      List.iter
        (fun mode ->
          let _, _, diags = prove ~mode prog in
          check_clean
            ~what:(wname ^ "/" ^ Instrument.mode_name mode)
            diags)
        all_modes)
    [ "compress_like"; "go_like"; "perl_like" ]

(* ---- seeded violations ---- *)

let expect_flagged ~what diags =
  match diags with
  | [] -> Alcotest.failf "%s: seeded violation not flagged" what
  | diags ->
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.severity <> Diag.Error then
            Alcotest.failf "%s: non-error diagnostic %S" what d.Diag.message)
        diags

(* Shrink the victim procedure's counter table by one word: its last cell
   is now out of bounds. *)
let shrink_table prog (manifest : Instrument.manifest) =
  let global =
    List.find_map
      (fun (info : Instrument.proc_info) ->
        match info.Instrument.table with
        | Instrument.Array_table { global; _ }
        | Instrument.Edge_table { global; _ } ->
            Some global
        | _ -> None)
      manifest.Instrument.infos
    |> Option.get
  in
  let globals =
    Array.to_list prog.Program.globals
    |> List.map (fun (g : Program.global) ->
           if g.Program.gname = global then
             { g with Program.size_words = g.Program.size_words - 1 }
           else g)
  in
  Program.make
    ~procs:(Array.to_list prog.Program.procs)
    ~globals ~main:prog.Program.main

(* Copy the path location into original register 0: a taint leak. *)
let leak_path ~original prog (manifest : Instrument.manifest) =
  let i, loc =
    List.mapi (fun i info -> (i, info)) manifest.Instrument.infos
    |> List.find_map (fun (i, (info : Instrument.proc_info)) ->
           match info.Instrument.path_loc with
           | Some loc
             when original.Program.procs.(i).Proc.niregs >= 1 ->
               Some (i, loc)
           | _ -> None)
    |> Option.get
  in
  let p = prog.Program.procs.(i) in
  let leak =
    match loc with
    | Pp_instrument.Path_instr.Path_reg r -> [ Instr.Imov (0, r) ]
    | Pp_instrument.Path_instr.Path_slot off ->
        [ Instr.Frameaddr (0, off); Instr.Load (0, 0, 0) ]
  in
  let blocks =
    Array.map
      (fun (b : Block.t) ->
        if b.Block.label = p.Proc.entry then
          { b with Block.instrs = b.Block.instrs @ leak }
        else b)
      p.Proc.blocks
  in
  let procs =
    Array.to_list prog.Program.procs
    |> List.mapi (fun j q -> if j = i then Proc.with_blocks p blocks else q)
  in
  Program.make ~procs
    ~globals:(Array.to_list prog.Program.globals)
    ~main:prog.Program.main

(* Bump one path-register edge increment: commit sums now exceed the
   table. *)
let bump_increment prog (manifest : Instrument.manifest) =
  let victims =
    List.filter_map
      (fun (info : Instrument.proc_info) ->
        match info.Instrument.path_loc with
        | Some (Pp_instrument.Path_instr.Path_reg r) ->
            Some (info.Instrument.proc, r)
        | _ -> None)
      manifest.Instrument.infos
  in
  let bumped = ref false in
  let procs =
    Array.to_list prog.Program.procs
    |> List.map (fun (p : Proc.t) ->
           match List.assoc_opt p.Proc.name victims with
           | None -> p
           | Some preg ->
               let blocks =
                 Array.map
                   (fun (b : Block.t) ->
                     let instrs =
                       List.map
                         (fun instr ->
                           match instr with
                           | Instr.Ibinop_imm (I.Add, rd, rs, k)
                             when rd = preg && rs = preg && not !bumped ->
                               bumped := true;
                               Instr.Ibinop_imm (I.Add, rd, rs, k + 1_000)
                           | i -> i)
                         b.Block.instrs
                     in
                     { b with Block.instrs })
                   p.Proc.blocks
               in
               Proc.with_blocks p blocks)
  in
  if not !bumped then Alcotest.fail "no path-register increment to bump";
  Program.make ~procs
    ~globals:(Array.to_list prog.Program.globals)
    ~main:prog.Program.main

let test_seeded_bounds () =
  let prog = branchy_program () in
  let instrumented, manifest, clean = prove ~mode:Instrument.Flow_hw prog in
  check_clean ~what:"pre-mutation" clean;
  let mutant = shrink_table instrumented manifest in
  expect_flagged ~what:"shrunk table"
    (Verifier.prove_program ~original:prog ~manifest mutant)

let test_seeded_taint () =
  let prog = branchy_program () in
  let instrumented, manifest, clean = prove ~mode:Instrument.Flow_hw prog in
  check_clean ~what:"pre-mutation" clean;
  let mutant = leak_path ~original:prog instrumented manifest in
  expect_flagged ~what:"path leak"
    (Verifier.prove_program ~original:prog ~manifest mutant);
  (* the spilled variant leaks through a frame-slot load instead *)
  let options =
    { Instrument.default_options with Instrument.spill_threshold = 0 }
  in
  let instrumented, manifest, clean =
    prove ~options ~mode:Instrument.Flow_hw prog
  in
  check_clean ~what:"pre-mutation (spilled)" clean;
  let mutant = leak_path ~original:prog instrumented manifest in
  expect_flagged ~what:"spilled path leak"
    (Verifier.prove_program ~original:prog ~manifest mutant)

let test_seeded_increment () =
  let prog = branchy_program () in
  let instrumented, manifest, clean = prove ~mode:Instrument.Flow_hw prog in
  check_clean ~what:"pre-mutation" clean;
  let mutant = bump_increment instrumented manifest in
  expect_flagged ~what:"bumped increment"
    (Verifier.prove_program ~original:prog ~manifest mutant)

(* ---- runtime soundness oracle ---- *)

(* Execute a workload with a block-entry probe that checks every VM
   register value against the abstract value the certifier derived for
   that block's entry.  A single admits failure disproves soundness. *)
let oracle_run ~mode ~max_instructions wname =
  let prog = Workload.compile (Option.get (Registry.find wname)) in
  let session =
    Driver.prepare ~pruner:Feasibility.pruner ~max_instructions ~mode prog
  in
  let analyses = Hashtbl.create 16 in
  let infos = Array.of_list session.Driver.manifest.Instrument.infos in
  Array.iteri
    (fun i (op : Proc.t) ->
      let ip = session.Driver.instrumented.Program.procs.(i) in
      let info = infos.(i) in
      let state = Instrument.state ~original:op ~instrumented:ip info in
      let policy = Taint.of_state state in
      let tables =
        match info.Instrument.table with
        | Instrument.Array_table { global; _ }
        | Instrument.Edge_table { global; _ } -> (
            match Program.find_global session.Driver.instrumented global with
            | Some g -> [ (global, g.Program.size_words) ]
            | None -> [])
        | _ -> []
      in
      let conf =
        Absint.config ~budget:max_instructions ~policy ~tables ()
      in
      Hashtbl.replace analyses ip.Proc.name
        (Absint.analyze ~conf (Cfg.of_proc ip)))
    session.Driver.original.Program.procs;
  let layout = Interp.layout session.Driver.vm in
  let global_base g =
    match Layout.global_addr layout g with
    | addr -> Some addr
    | exception _ -> None
  in
  let failure = ref None in
  Interp.set_block_probe session.Driver.vm
    (fun ~proc ~label ~frame ~iregs ->
      if !failure = None then
        match Hashtbl.find_opt analyses proc with
        | None -> failure := Some (Printf.sprintf "unknown procedure %s" proc)
        | Some t -> (
            match Absint.entry_env t label with
            | None ->
                failure :=
                  Some
                    (Printf.sprintf "%s/L%d executed but unreached" proc label)
            | Some env ->
                Array.iteri
                  (fun r x ->
                    let v = Absint.ireg env r in
                    if not (Absint.admits ~global_base ~frame v x) then
                      failure :=
                        Some
                          (Format.asprintf
                             "%s/L%d: r%d = %d outside derived %a" proc label
                             r x Absint.pp_value v))
                  iregs));
  (* hitting the instruction budget is fine: every executed block was
     still checked *)
  (match Driver.run session with
  | _ -> ()
  | exception Interp.Trap msg ->
      let budgeted =
        let n = String.length msg and m = String.length "budget" in
        let rec scan i =
          i + m <= n && (String.sub msg i m = "budget" || scan (i + 1))
        in
        scan 0
      in
      if not budgeted then
        Alcotest.failf "oracle (%s, %s): unexpected trap: %s" wname
          (Instrument.mode_name mode) msg);
  match !failure with
  | None -> ()
  | Some msg ->
      Alcotest.failf "oracle (%s, %s): %s" wname
        (Instrument.mode_name mode) msg

let test_oracle_registry () =
  List.iter
    (fun (w : Workload.t) ->
      oracle_run ~mode:Instrument.Flow_hw ~max_instructions:200_000
        w.Workload.name)
    Registry.all

let test_oracle_all_modes () =
  List.iter
    (fun wname ->
      List.iter
        (fun mode -> oracle_run ~mode ~max_instructions:150_000 wname)
        all_modes)
    [ "compress_like"; "li_like" ]

(* ---- differential: constprop vs the VM ---- *)

(* Random straight-line arithmetic; every register printed at the end.
   Wherever the constant-propagation fixpoint claims a constant, the VM
   must print exactly that value.  (Top claims nothing and is always
   acceptable; Div/Rem are excluded so no mutant traps.) *)
let gen_straightline seed =
  let rng = Random.State.make [| seed |] in
  let b =
    Builder.create ~name:"main" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
  in
  ignore (Builder.new_block b);
  let regs = Array.init 4 (fun _ -> Builder.new_ireg b) in
  let any () = regs.(Random.State.int rng (Array.length regs)) in
  Array.iter
    (fun r ->
      Builder.emit b (Instr.Iconst (r, Random.State.int rng 201 - 100)))
    regs;
  let ops = [| I.Add; I.Sub; I.Mul; I.And; I.Or; I.Xor; I.Shl; I.Shr |] in
  let cmps = [| I.Eq; I.Ne; I.Lt; I.Le; I.Gt; I.Ge |] in
  for _ = 1 to 12 do
    let rd = any () and rs = any () and rt = any () in
    match Random.State.int rng 5 with
    | 0 -> Builder.emit b (Instr.Iconst (rd, Random.State.int rng 2001 - 1000))
    | 1 -> Builder.emit b (Instr.Imov (rd, rs))
    | 2 ->
        Builder.emit b
          (Instr.Ibinop
             (ops.(Random.State.int rng (Array.length ops)), rd, rs, rt))
    | 3 ->
        Builder.emit b
          (Instr.Ibinop_imm
             ( ops.(Random.State.int rng (Array.length ops)),
               rd,
               rs,
               Random.State.int rng 64 ))
    | _ ->
        Builder.emit b
          (Instr.Icmp
             (cmps.(Random.State.int rng (Array.length cmps)), rd, rs, rt))
  done;
  Array.iter (fun r -> Builder.emit b (Instr.Print_int r)) regs;
  Builder.terminate b (Block.Ret Block.Ret_void);
  (Builder.finish b, Array.to_list regs)

let prop_constprop_agrees =
  QCheck.Test.make ~name:"constprop constants match the VM" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let proc, regs = gen_straightline seed in
      let prog = Program.make ~procs:[ proc ] ~globals:[] ~main:"main" in
      let printed =
        match Interp.run (Interp.create prog) with
        | r ->
            List.filter_map
              (function Interp.Oint n -> Some n | Interp.Ofloat _ -> None)
              r.Interp.output
        | exception Interp.Trap _ -> []
      in
      match printed with
      | [] -> true (* trapped: nothing to compare *)
      | printed ->
          let cfg = Cfg.of_proc proc in
          let cp = Constprop.analyze cfg in
          let exit_vals =
            Option.get (Constprop.exit_state cp proc.Proc.entry)
          in
          List.for_all2
            (fun r printed ->
              match exit_vals.(r) with
              | Constprop.Const c -> c = printed
              | Constprop.Top -> true)
            regs printed)

let suite =
  [
    Alcotest.test_case "interval: algebra" `Quick test_interval_algebra;
    Alcotest.test_case "interval: widening" `Quick test_interval_widen;
    Alcotest.test_case "congruence: algebra" `Quick test_congruence_algebra;
    Alcotest.test_case "prove: fixture clean, all modes" `Quick
      test_no_false_alarms_fixture;
    Alcotest.test_case "prove: option variants clean" `Quick
      test_no_false_alarms_options;
    Alcotest.test_case "prove: workloads clean, all modes" `Slow
      test_no_false_alarms_workloads;
    Alcotest.test_case "prove: shrunk table flagged" `Quick
      test_seeded_bounds;
    Alcotest.test_case "prove: path leak flagged" `Quick test_seeded_taint;
    Alcotest.test_case "prove: bumped increment flagged" `Quick
      test_seeded_increment;
    Alcotest.test_case "oracle: registry, flow-hw" `Slow
      test_oracle_registry;
    Alcotest.test_case "oracle: two workloads, all modes" `Slow
      test_oracle_all_modes;
    QCheck_alcotest.to_alcotest prop_constprop_agrees;
  ]
