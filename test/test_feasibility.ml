(* The PR-3 analyzer stack: conditional constant propagation, static path
   feasibility, the frequency estimator, the cost report — and the one
   property everything hangs on: a path judged statically infeasible is
   NEVER observed in a dynamic profile, in any instrumentation mode. *)

module Digraph = Pp_graph.Digraph
module Cfg = Pp_ir.Cfg
module Block = Pp_ir.Block
module Instr = Pp_ir.Instr
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program
module Builder = Pp_ir.Builder
module Ball_larus = Pp_core.Ball_larus
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Constprop = Pp_analysis.Constprop
module Feasibility = Pp_analysis.Feasibility
module Freq = Pp_analysis.Freq
module Cost = Pp_analysis.Cost
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver

let check = Alcotest.check

(* L0: r1 <- 5; br r1 (L1 | L2); L1 -> L3; L2 -> L3; L3: ret.
   The else arm is statically dead. *)
let constant_branch_proc () =
  let b =
    Builder.create ~name:"cbr" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void
  in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  assert (l0 = 0);
  Builder.emit b (Instr.Iconst (1, 5));
  Builder.terminate b (Block.Br (1, l1, l2));
  Builder.switch_to b l1;
  Builder.terminate b (Block.Jmp l3);
  Builder.switch_to b l2;
  Builder.terminate b (Block.Jmp l3);
  Builder.switch_to b l3;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

(* The feasible_demo work() shape: two branches on the same derived value.
   Of the four arm combinations only then/then and else/else can run. *)
let correlated_src =
  "int work(int a) {\n\
  \  int t;\n\
  \  if (a > 0) { t = 1; } else { t = 0; }\n\
  \  if (t > 0) { print(a); } else { print(0 - a); }\n\
  \  return t;\n\
   }\n\
   void main() {\n\
  \  print(work(3));\n\
  \  print(work(0 - 2));\n\
   }\n"

(* {2 Constant propagation} *)

let test_constprop_constant_branch () =
  let cfg = Cfg.of_proc (constant_branch_proc ()) in
  let cp = Constprop.analyze cfg in
  check Alcotest.bool "then arm reached" true (Constprop.reachable cp 1);
  check Alcotest.bool "else arm dead" false (Constprop.reachable cp 2);
  (match Constprop.branch_value cp 0 with
  | Some (Constprop.Const 5) -> ()
  | _ -> Alcotest.fail "branch value should be Const 5");
  let dead_edges =
    Digraph.fold_edges
      (fun e acc -> if Constprop.edge_executable cp e then acc else e :: acc)
      cfg.Cfg.graph []
  in
  (* The false arm itself, plus the dead block's own out-edge. *)
  check Alcotest.int "false arm and its successor edge are dead" 2
    (List.length dead_edges);
  check Alcotest.bool "one dead edge is the Branch_false" true
    (List.exists
       (fun (e : Digraph.edge) -> Cfg.role cfg e = Cfg.Branch_false)
       dead_edges)

let test_constprop_join_loses_constant () =
  (* r1 is 1 or 2 depending on an unknown branch: the join sees Top. *)
  let b =
    Builder.create ~name:"join" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void
  in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  assert (l0 = 0);
  Builder.terminate b (Block.Br (0, l1, l2));
  Builder.switch_to b l1;
  Builder.emit b (Instr.Iconst (1, 1));
  Builder.terminate b (Block.Jmp l3);
  Builder.switch_to b l2;
  Builder.emit b (Instr.Iconst (1, 2));
  Builder.terminate b (Block.Jmp l3);
  Builder.switch_to b l3;
  Builder.terminate b (Block.Ret Block.Ret_void);
  let cfg = Cfg.of_proc (Builder.finish b) in
  let cp = Constprop.analyze cfg in
  (match Constprop.entry_state cp 3 with
  | Some st -> check Alcotest.bool "join is Top" true (st.(1) = Constprop.Top)
  | None -> Alcotest.fail "join block unreached");
  match Constprop.entry_state cp 1 with
  | Some st ->
      check Alcotest.bool "param is Top" true (st.(0) = Constprop.Top)
  | None -> Alcotest.fail "then block unreached"

let test_constprop_transfer_mirrors_vm () =
  (* Division by a constant zero must NOT fold (the VM traps); shifts mask
     to 6 bits; Shr is arithmetic. *)
  let st = [| Constprop.Const 7; Constprop.Const 0; Constprop.Top |] in
  Constprop.transfer st (Instr.Ibinop (Instr.Div, 2, 0, 1));
  check Alcotest.bool "div-by-0 folds to Top" true (st.(2) = Constprop.Top);
  let st = [| Constprop.Const (-16); Constprop.Const 65; Constprop.Top |] in
  Constprop.transfer st (Instr.Ibinop (Instr.Shr, 2, 0, 1));
  check Alcotest.bool "shr masks shift amount, stays arithmetic" true
    (st.(2) = Constprop.Const (-8));
  let st = [| Constprop.Const 6; Constprop.Top |] in
  Constprop.transfer st (Instr.Icmp_imm (Instr.Lt, 1, 0, 10));
  check Alcotest.bool "icmp folds to 1" true (st.(1) = Constprop.Const 1)

(* {2 Feasibility} *)

let test_feasibility_constant_branch () =
  let p = constant_branch_proc () in
  let bl = Ball_larus.build (Cfg.of_proc p) in
  let cfg = Ball_larus.cfg bl in
  let fs = Feasibility.analyze cfg bl in
  check Alcotest.bool "enumerated" true (Feasibility.enumerated fs);
  check Alcotest.int "two potential paths" 2 (Ball_larus.num_paths bl);
  check Alcotest.int "one feasible" 1 (Feasibility.num_feasible fs);
  check Alcotest.int "two never-executable edges" 2
    (List.length (Feasibility.infeasible_edges fs));
  match Feasibility.infeasible_sums fs with
  | [ sum ] -> (
      match Feasibility.check fs sum with
      | Feasibility.Infeasible_edge _ -> ()
      | _ -> Alcotest.fail "expected an infeasible-edge verdict")
  | sums ->
      Alcotest.failf "expected one infeasible sum, got %d"
        (List.length sums)

let test_feasibility_branch_correlation () =
  let prog = Pp_minic.Compile.program ~name:"corr" correlated_src in
  let p = Program.proc_exn prog "work" in
  let bl = Ball_larus.build (Cfg.of_proc p) in
  let cfg = Ball_larus.cfg bl in
  let fs = Feasibility.analyze cfg bl in
  check Alcotest.int "four potential paths" 4 (Ball_larus.num_paths bl);
  check Alcotest.int "two feasible" 2 (Feasibility.num_feasible fs);
  (* No single edge is dead — only the correlation kills paths. *)
  check Alcotest.int "no never-executable edges" 0
    (List.length (Feasibility.infeasible_edges fs));
  List.iter
    (fun sum ->
      match Feasibility.check fs sum with
      | Feasibility.Infeasible_branch _ -> ()
      | _ -> Alcotest.failf "path %d should die by branch correlation" sum)
    (Feasibility.infeasible_sums fs)

let test_traverse_matches_decode () =
  List.iter
    (fun p ->
      let bl = Ball_larus.build (Cfg.of_proc p) in
      for sum = 0 to Ball_larus.num_paths bl - 1 do
        let trav = Ball_larus.traverse bl sum in
        check Alcotest.int "traversal carries its sum" sum
          trav.Ball_larus.sum;
        let d = Ball_larus.decode bl sum in
        check
          (Alcotest.list Alcotest.int)
          "traversal path = decode" d.Ball_larus.blocks
          trav.Ball_larus.path.Ball_larus.blocks;
        (* Real edges link consecutive path blocks, bracketed by the
           ENTRY edge for From_entry paths and the Return edge for
           To_exit paths (both are real CFG edges; backedge endpoints are
           pseudo edges and excluded). *)
        let cfg = Ball_larus.cfg bl in
        let blocks =
          List.map
            (fun (e : Digraph.edge) ->
              ( Cfg.label_of_vertex cfg e.Digraph.src,
                Cfg.label_of_vertex cfg e.Digraph.dst ))
            trav.Ball_larus.real_edges
        in
        let rec pairs = function
          | a :: (b :: _ as rest) -> (Some a, Some b) :: pairs rest
          | _ -> []
        in
        let pairs bs =
          let interior = pairs bs in
          let with_entry =
            match d.Ball_larus.source with
            | Ball_larus.From_entry ->
                (None, Some (List.hd bs)) :: interior
            | Ball_larus.After_backedge _ -> interior
          in
          match d.Ball_larus.sink with
          | Ball_larus.To_exit ->
              with_entry
              @ [ (Some (List.nth bs (List.length bs - 1)), None) ]
          | Ball_larus.Into_backedge _ -> with_entry
        in
        check
          (Alcotest.list
             (Alcotest.pair
                (Alcotest.option Alcotest.int)
                (Alcotest.option Alcotest.int)))
          "real edges are the consecutive block pairs"
          (pairs d.Ball_larus.blocks) blocks
      done)
    [ Fixtures.figure1_proc (); Fixtures.loop_proc ();
      Fixtures.two_backedges_proc () ]

let test_pruned_round_trip () =
  let bl = Ball_larus.build (Cfg.of_proc (Fixtures.figure1_proc ())) in
  check Alcotest.int "figure 1 has six paths" 6 (Ball_larus.num_paths bl);
  let pruned = Ball_larus.prune bl ~feasible:(fun s -> s mod 2 = 0) in
  check Alcotest.int "three survive" 3 (Ball_larus.num_feasible pruned);
  check
    (Alcotest.array Alcotest.int)
    "sums ascending" [| 0; 2; 4 |]
    (Ball_larus.feasible_sums pruned);
  for i = 0 to Ball_larus.num_feasible pruned - 1 do
    let sum = Ball_larus.sum_of_index pruned i in
    check
      (Alcotest.option Alcotest.int)
      "index round trip" (Some i)
      (Ball_larus.index_of_sum pruned sum)
  done;
  check (Alcotest.option Alcotest.int) "pruned sum has no index" None
    (Ball_larus.index_of_sum pruned 3)

(* {2 Profile I/O annotations} *)

let saved_profile () =
  let prog = Pp_minic.Compile.program ~name:"corr" correlated_src in
  let s = Driver.prepare ~pruner:Feasibility.pruner ~mode:Instrument.Flow_hw prog in
  ignore (Driver.run s);
  let feasible =
    List.filter_map
      (fun (info : Instrument.proc_info) ->
        match info.Instrument.pruned with
        | Some pr ->
            Some (info.Instrument.proc, Ball_larus.num_feasible pr)
        | None -> None)
      s.Driver.manifest.Instrument.infos
  in
  ( prog,
    Profile_io.of_profile ~feasible
      ~program_hash:(Profile_io.program_hash prog)
      ~mode:(Instrument.mode_name Instrument.Flow_hw)
      (Driver.path_profile s) )

let test_profile_io_feasible_round_trip () =
  let _, saved = saved_profile () in
  check Alcotest.bool "annotation present" true
    (List.mem_assoc "work" saved.Profile_io.feasible);
  check
    (Alcotest.option Alcotest.int)
    "work certifies 2 feasible paths" (Some 2)
    (List.assoc_opt "work" saved.Profile_io.feasible);
  let reparsed = Profile_io.of_string (Profile_io.to_string saved) in
  check Alcotest.string "round trip is identity"
    (Profile_io.to_string saved)
    (Profile_io.to_string reparsed)

let test_profile_io_merge_annotations () =
  let _, saved = saved_profile () in
  (match Profile_io.merge saved saved with
  | Ok m ->
      check
        (Alcotest.option Alcotest.int)
        "agreement survives merge" (Some 2)
        (List.assoc_opt "work" m.Profile_io.feasible)
  | Error _ -> Alcotest.fail "agreeing shards must merge");
  let tampered =
    {
      saved with
      Profile_io.feasible =
        List.map
          (fun (n, k) -> if n = "work" then (n, k + 1) else (n, k))
          saved.Profile_io.feasible;
    }
  in
  match Profile_io.merge saved tampered with
  | Ok _ -> Alcotest.fail "disagreeing feasible counts must not merge"
  | Error _ -> ()

(* {2 Frequency estimation} *)

let test_freq_sanity () =
  let cfg = Cfg.of_proc (Fixtures.loop_proc ()) in
  let freq = Freq.estimate cfg in
  check (Alcotest.float 1e-9) "ENTRY executes once" 1.0
    (Freq.vertex_freq freq cfg.Cfg.entry);
  (* Outgoing probabilities of every vertex with successors sum to 1. *)
  Digraph.iter_vertices
    (fun v ->
      let out = Digraph.out_edges cfg.Cfg.graph v in
      if out <> [] && Freq.vertex_freq freq v > 0.0 then
        check (Alcotest.float 1e-9)
          (Printf.sprintf "probs at %d sum to 1" v)
          1.0
          (List.fold_left
             (fun acc e -> acc +. Freq.edge_prob freq e)
             0.0 out))
    cfg.Cfg.graph;
  (* The loop body runs more often per invocation than straight-line
     code, and every estimate is finite and non-negative. *)
  let body = Freq.block_freq freq 2 and pre = Freq.block_freq freq 0 in
  check Alcotest.bool "loop body amplified" true (body > pre);
  Digraph.iter_vertices
    (fun v ->
      let f = Freq.vertex_freq freq v in
      check Alcotest.bool "finite, non-negative" true
        (Float.is_finite f && f >= 0.0))
    cfg.Cfg.graph;
  check Alcotest.int "loop depth of body" 1
    (Freq.loop_depth freq (Cfg.vertex_of_label cfg 2))

let test_freq_infeasible_edge_is_zero () =
  let cfg = Cfg.of_proc (constant_branch_proc ()) in
  let cp = Constprop.analyze cfg in
  let freq = Freq.estimate ~cp cfg in
  check (Alcotest.float 1e-9) "dead arm never runs" 0.0
    (Freq.block_freq freq 2);
  check (Alcotest.float 1e-9) "live arm always runs" 1.0
    (Freq.block_freq freq 1)

(* {2 Cost report} *)

let test_cost_report_with_profile () =
  let prog, saved = saved_profile () in
  match Cost.compute ~mode:Instrument.Flow_hw ~profile:saved prog with
  | Error d -> Alcotest.failf "cost failed: %s" (Pp_ir.Diag.to_string d)
  | Ok report ->
      let work =
        List.find (fun (r : Cost.row) -> r.Cost.proc = "work") report.Cost.rows
      in
      check (Alcotest.option Alcotest.int) "feasible column" (Some 2)
        work.Cost.nfeasible;
      (match work.Cost.measured with
      | None -> Alcotest.fail "profiled proc must have measured data"
      | Some m ->
          check Alcotest.int "work called twice" 2 m.Cost.invocations;
          check Alcotest.bool "probes executed" true (m.Cost.probes > 0));
      let rendered = Cost.render report in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool "comparison section present" true
        (contains rendered "estimated vs measured")

let test_cost_rejects_bad_annotation () =
  let prog, saved = saved_profile () in
  let tampered =
    {
      saved with
      Profile_io.feasible =
        List.map
          (fun (n, k) -> if n = "work" then (n, k + 1) else (n, k))
          saved.Profile_io.feasible;
    }
  in
  match Cost.compute ~mode:Instrument.Flow_hw ~profile:tampered prog with
  | Ok _ -> Alcotest.fail "wrong feasible annotation must be rejected"
  | Error _ -> ()

(* {2 The soundness property}

   Over randomly generated MiniC programs, run every instrumentation mode
   with the pruner enabled and require that no dynamically executed path
   was judged statically infeasible, and (for edge profiles) that no
   dynamically executed edge was proven never-executable.  This is the
   contract that makes pruning sound rather than merely plausible. *)

let all_modes =
  [
    Instrument.Edge_freq;
    Instrument.Flow_freq;
    Instrument.Flow_hw;
    Instrument.Context_hw;
    Instrument.Context_flow;
  ]

let prop_pruning_sound =
  QCheck.Test.make
    ~name:"no observed path or edge is ever statically pruned" ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Test_random_programs.gen_program seed in
      let prog = Pp_minic.Compile.program ~name:"gen" src in
      List.for_all
        (fun mode ->
          let s =
            Driver.prepare ~pruner:Feasibility.pruner
              ~max_instructions:400_000_000 ~mode prog
          in
          ignore (Driver.run s);
          let paths_sound =
            List.for_all
              (fun (pp : Profile.proc_profile) ->
                let bl = pp.Profile.numbering in
                let fs =
                  Feasibility.analyze (Ball_larus.cfg bl) bl
                in
                Profile.observed_infeasible pp
                  ~feasible:(Feasibility.feasible fs)
                = [])
              (Driver.path_profile s).Profile.procs
          in
          let edges_sound =
            match mode with
            | Instrument.Edge_freq ->
                List.for_all
                  (fun (_, plan, counts) ->
                    let cfg = Pp_core.Edge_profile.cfg plan in
                    let cp = Constprop.analyze cfg in
                    List.for_all
                      (fun ((e : Digraph.edge), n) ->
                        n = 0 || Constprop.edge_executable cp e)
                      counts)
                  (Driver.edge_profile s)
            | _ -> true
          in
          paths_sound && edges_sound)
        all_modes)

let suite =
  [
    Alcotest.test_case "constprop: constant branch kills an arm" `Quick
      test_constprop_constant_branch;
    Alcotest.test_case "constprop: join loses the constant" `Quick
      test_constprop_join_loses_constant;
    Alcotest.test_case "constprop: folding mirrors the VM" `Quick
      test_constprop_transfer_mirrors_vm;
    Alcotest.test_case "feasibility: constant branch prunes a path" `Quick
      test_feasibility_constant_branch;
    Alcotest.test_case "feasibility: branch correlation prunes 2 of 4"
      `Quick test_feasibility_branch_correlation;
    Alcotest.test_case "traverse agrees with decode" `Quick
      test_traverse_matches_decode;
    Alcotest.test_case "pruned numbering: index/sum round trip" `Quick
      test_pruned_round_trip;
    Alcotest.test_case "profile io: feasible annotations round trip" `Quick
      test_profile_io_feasible_round_trip;
    Alcotest.test_case "profile io: merge checks annotation agreement"
      `Quick test_profile_io_merge_annotations;
    Alcotest.test_case "freq: probabilities and loop amplification" `Quick
      test_freq_sanity;
    Alcotest.test_case "freq: infeasible edges get zero mass" `Quick
      test_freq_infeasible_edge_is_zero;
    Alcotest.test_case "cost: estimated vs measured report" `Quick
      test_cost_report_with_profile;
    Alcotest.test_case "cost: rejects disagreeing annotations" `Quick
      test_cost_rejects_bad_annotation;
    QCheck_alcotest.to_alcotest prop_pruning_sound;
  ]
