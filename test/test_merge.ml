(* Merge laws for profiles and CCTs, the Profile_io shard format, and
   mutation coverage: seeded merge defects must be caught by the laws.

   The profiles come from real instrumented runs of a small fixture, so
   the numberings, path sums and metric values are genuine; the QCheck
   properties then synthesise random path tables over those numberings. *)

module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Ball_larus = Pp_core.Ball_larus
module Cct = Pp_core.Cct
module Cct_io = Pp_core.Cct_io
module Event = Pp_machine.Event
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Diag = Pp_ir.Diag



(* Branches, a loop and recursion: every path-table shape merge must
   handle. *)
let src =
  {|
int arr[8];
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void work(int x) {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    if (x % 2 == 0) { arr[i % 8] = arr[i % 8] + x; }
    else { arr[i % 8] = arr[i % 8] - x; }
    x = x + 1;
  }
}
void main() {
  int k;
  for (k = 0; k < 6; k = k + 1) { work(k + fib(5)); }
  int j;
  for (j = 0; j < 8; j = j + 1) { print(arr[j]); }
}
|}

let program = lazy (Pp_minic.Compile.program ~name:"merge_fixture" src)

let profile_in mode =
  let s =
    Driver.prepare ~max_instructions:50_000_000 ~mode (Lazy.force program)
  in
  ignore (Driver.run s);
  Driver.path_profile s

let fixture = lazy (profile_in Instrument.Flow_hw)

(* {2 Profile.merge laws} *)

let view (p : Profile.t) =
  List.map
    (fun (pp : Profile.proc_profile) ->
      ( pp.Profile.proc,
        List.map
          (fun (s, m) ->
            (s, m.Profile.freq, m.Profile.m0, m.Profile.m1))
          pp.Profile.paths ))
    p.Profile.procs

(* The order [merge] promises, applied by hand — so a raw (run-ordered)
   profile can be compared against a merged one. *)
let canonical_view p =
  view p
  |> List.map (fun (name, paths) -> (name, List.sort compare paths))
  |> List.sort compare

let pics = (Event.Dcache_misses, Event.Instructions)

let empty_profile () =
  Profile.empty ~pic0:(fst pics) ~pic1:(snd pics)

(* Random profiles over the fixture's genuine numberings: a random subset
   of procedures, random executed-path subsets in random order. *)
let gen_profile st =
  let base = Lazy.force fixture in
  let procs =
    List.filter_map
      (fun (pp : Profile.proc_profile) ->
        if Random.State.int st 4 = 0 then None
        else
          let np = Ball_larus.num_paths pp.Profile.numbering in
          let nsums = 1 + Random.State.int st 6 in
          let sums =
            List.init nsums (fun _ -> Random.State.int st np)
            |> List.sort_uniq compare
          in
          let paths =
            List.map
              (fun s ->
                ( s,
                  {
                    Profile.freq = Random.State.int st 100;
                    m0 = Random.State.int st 100;
                    m1 = Random.State.int st 100;
                  } ))
              sums
          in
          (* random order: merge must not depend on input ordering *)
          let paths =
            if Random.State.bool st then List.rev paths else paths
          in
          Some { pp with Profile.paths })
      base.Profile.procs
  in
  { Profile.pic0 = fst pics; pic1 = snd pics; procs }

let totals p =
  (Profile.total_freq p, Profile.total_m0 p, Profile.total_m1 p)

let add3 (a, b, c) (d, e, f) = (a + d, b + e, c + f)

let prop_merge_commutes =
  QCheck.Test.make ~name:"profile merge commutes" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let st = Random.State.make [| s1; s2; 11 |] in
      let a = gen_profile st and b = gen_profile st in
      view (Profile.merge a b) = view (Profile.merge b a))

let prop_merge_assoc =
  QCheck.Test.make ~name:"profile merge associates" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let st = Random.State.make [| s1; s2; 13 |] in
      let a = gen_profile st
      and b = gen_profile st
      and c = gen_profile st in
      view (Profile.merge (Profile.merge a b) c)
      = view (Profile.merge a (Profile.merge b c)))

let prop_merge_identity =
  QCheck.Test.make ~name:"empty profile is the merge identity" ~count:50
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 17 |] in
      let a = gen_profile st in
      let e = empty_profile () in
      view (Profile.merge a e) = canonical_view a
      && view (Profile.merge e a) = canonical_view a)

let prop_merge_conserves =
  QCheck.Test.make
    ~name:"merge conserves frequencies and counter totals" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let st = Random.State.make [| s1; s2; 19 |] in
      let a = gen_profile st and b = gen_profile st in
      totals (Profile.merge a b) = add3 (totals a) (totals b))

let test_merge_real_run () =
  (* Merging a run's profile with itself doubles every accumulator. *)
  let p = Lazy.force fixture in
  let m = Profile.merge p p in
  Alcotest.(check bool) "doubled totals" true
    (totals m = add3 (totals p) (totals p));
  Alcotest.(check bool) "same paths" true
    (canonical_view m
    = List.map
        (fun (name, paths) ->
          ( name,
            List.map (fun (s, f, m0, m1) -> (s, 2 * f, 2 * m0, 2 * m1))
              paths ))
        (canonical_view p))

let test_merge_pic_mismatch () =
  let p = Lazy.force fixture in
  let e = Profile.empty ~pic0:Event.Instructions ~pic1:Event.Instructions in
  match Profile.merge p e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on PIC mismatch"

let test_merge_numbering_mismatch () =
  let p = Lazy.force fixture in
  match p.Profile.procs with
  | pa :: pb :: _ when
      Ball_larus.num_paths pa.Profile.numbering
      <> Ball_larus.num_paths pb.Profile.numbering -> (
      (* Claim [pa]'s paths were collected under [pb]'s numbering. *)
      let forged =
        {
          p with
          Profile.procs = [ { pa with Profile.numbering = pb.Profile.numbering } ];
        }
      in
      match Profile.merge p forged with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on path-count mismatch")
  | _ -> Alcotest.fail "fixture needs two procs with distinct path counts"

(* {2 Profile_io: the on-disk shard format} *)

let saved_fixture () =
  let p = Lazy.force fixture in
  Profile_io.of_profile
    ~program_hash:(Profile_io.program_hash (Lazy.force program))
    ~mode:(Instrument.mode_name Instrument.Flow_hw)
    p

let test_io_roundtrip () =
  let s = saved_fixture () in
  let s' = Profile_io.of_string (Profile_io.to_string s) in
  Alcotest.(check bool) "string roundtrip" true (s' = Profile_io.canonical s);
  let path = Filename.temp_file "profile" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.to_file path s;
      Alcotest.(check bool) "file roundtrip" true
        (Profile_io.of_file path = Profile_io.canonical s))

let test_io_totals () =
  let p = Lazy.force fixture in
  Alcotest.(check bool) "totals survive the strip" true
    (Profile_io.totals (saved_fixture ()) = totals p)

let test_io_merge_self () =
  let s = saved_fixture () in
  match Profile_io.merge s s with
  | Error d -> Alcotest.failf "unexpected: %s" (Diag.to_string d)
  | Ok m ->
      let f, m0, m1 = Profile_io.totals s in
      Alcotest.(check bool) "doubled" true (Profile_io.totals m = (2 * f, 2 * m0, 2 * m1))

let header_rejects what forge =
  let s = saved_fixture () in
  match Profile_io.merge s (forge s) with
  | Ok _ -> Alcotest.failf "merge accepted a %s mismatch" what
  | Error d ->
      Alcotest.(check string) (what ^ " diag at header") "<header>" d.Diag.loc.Diag.proc

let test_io_merge_hash_mismatch () =
  header_rejects "program hash" (fun s ->
      { s with Profile_io.program_hash = "deadbeef" })

let test_io_merge_mode_mismatch () =
  header_rejects "mode" (fun s -> { s with Profile_io.mode = "edge" })

let test_io_merge_pic_mismatch () =
  header_rejects "PIC" (fun s ->
      { s with Profile_io.pic0 = Event.Cycles })

let test_io_merge_npaths_mismatch () =
  let s = saved_fixture () in
  let victim, _, _ = List.hd s.Profile_io.procs in
  let forged =
    {
      s with
      Profile_io.procs =
        List.map
          (fun (name, np, paths) ->
            (name, (if name = victim then np + 1 else np), paths))
          s.Profile_io.procs;
    }
  in
  match Profile_io.merge s forged with
  | Ok _ -> Alcotest.fail "merge accepted a path-count mismatch"
  | Error d -> Alcotest.(check string) "diag names the procedure" victim d.Diag.loc.Diag.proc

let test_io_parse_errors () =
  let bad text =
    match Profile_io.of_string text with
    | exception Profile_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  bad "";
  bad "nonsense\n";
  bad "profile 2 h flow+hw dcache_misses instructions\n";
  bad "profile 1 h flow+hw dcache_misses instructions\npath 0 1 2 3\n";
  bad "profile 1 h flow+hw dcache_misses instructions\nproc f\n"

(* {2 Cct.merge} *)

type ev = E of string * int | X

let build ?(merge_call_sites = false) evs =
  let t =
    Cct.create ~merge_call_sites
      ~make_data:(fun ~proc:_ ~nsites:_ -> Array.make 2 0)
      ()
  in
  List.iter
    (function
      | E (proc, site) ->
          let n = Cct.enter t ~proc ~nsites:3 ~site ~kind:Cct.Direct in
          (Cct.data n).(0) <- (Cct.data n).(0) + 1
      | X -> Cct.exit t)
    evs;
  Cct.unwind_to_depth t 0;
  t

(* Id-independent shape: merge reassigns node ids, so trees are compared
   structurally, with backedge targets named by procedure (unique along
   any ancestor chain). *)
type shape =
  | Node of string * int list * (int * bool * int * shape) list
  | Back of string

let rec shape n =
  Node
    ( Cct.proc n,
      Array.to_list (Cct.data n),
      List.map
        (fun (e : _ Cct.edge) ->
          ( e.Cct.site,
            e.Cct.is_backedge,
            e.Cct.calls,
            if e.Cct.is_backedge then Back (Cct.proc e.Cct.target)
            else shape e.Cct.target ))
        (Cct.edges n) )

let rec shape_sorted = function
  | Back _ as b -> b
  | Node (p, d, es) ->
      Node
        ( p,
          d,
          List.map (fun (s, b, c, t) -> (s, b, c, shape_sorted t)) es
          |> List.sort compare )

let sum_data a b =
  match (a, b) with
  | Some x, Some y -> Array.init (Array.length x) (fun i -> x.(i) + y.(i))
  | Some x, None | None, Some x -> Array.copy x
  | None, None -> Array.make 2 0

let merge2 a b = Cct.merge ~merge_data:sum_data a b

let test_cct_merge_is_serial_union () =
  (* Two shards that partition one serial event stream merge into the
     tree the serial run builds. *)
  let sa = [ E ("M", 0); E ("A", 1); X; X ]
  and sb = [ E ("M", 0); E ("B", 2); X; E ("A", 1); X; X ] in
  let merged = merge2 (build sa) (build sb) in
  Cct.check_invariants merged;
  Alcotest.(check bool) "equals the serial tree" true
    (shape (Cct.root merged) = shape (Cct.root (build (sa @ sb))))

let test_cct_merge_commutes () =
  let a = build [ E ("M", 0); E ("A", 1); X; X ]
  and b = build [ E ("M", 0); E ("B", 2); X; E ("A", 1); X; X ] in
  (* Within a slot the edge order follows the first operand, so
     commutativity holds up to per-slot reordering. *)
  Alcotest.(check bool) "same shape modulo slot order" true
    (shape_sorted (shape (Cct.root (merge2 a b)))
    = shape_sorted (shape (Cct.root (merge2 b a))))

let test_cct_merge_assoc () =
  let a = build [ E ("M", 0); E ("A", 1); X; X ]
  and b = build [ E ("M", 0); E ("B", 2); X; X ]
  and c = build [ E ("M", 0); E ("A", 1); E ("C", 0); X; X; X ] in
  Alcotest.(check bool) "associates" true
    (shape (Cct.root (merge2 (merge2 a b) c))
    = shape (Cct.root (merge2 a (merge2 b c))))

let test_cct_merge_identity () =
  let a = build [ E ("M", 0); E ("A", 1); X; E ("B", 2); X; X ] in
  let sa = shape (Cct.root a) in
  Alcotest.(check bool) "right identity" true
    (shape (Cct.root (merge2 a (build []))) = sa);
  Alcotest.(check bool) "left identity" true
    (shape (Cct.root (merge2 (build []) a)) = sa)

let test_cct_merge_backedges () =
  let sa = [ E ("M", 0); E ("R", 1); E ("R", 1); X; X; X ]
  and sb = [ E ("M", 0); E ("R", 1); E ("R", 1); E ("R", 1); X; X; X; X ] in
  let merged = merge2 (build sa) (build sb) in
  Cct.check_invariants merged;
  Alcotest.(check bool) "backedge calls sum to the serial count" true
    (shape (Cct.root merged) = shape (Cct.root (build (sa @ sb))))

let test_cct_merge_call_sites () =
  let mk evs = build ~merge_call_sites:true evs in
  let sa = [ E ("M", 0); E ("A", 1); X; X ]
  and sb = [ E ("M", 0); E ("B", 2); X; X ] in
  let merged = merge2 (mk sa) (mk sb) in
  Alcotest.(check bool) "stays merged" true (Cct.merged merged);
  Cct.check_invariants merged;
  Alcotest.(check bool) "collapsed slots unify" true
    (shape (Cct.root merged) = shape (Cct.root (mk (sa @ sb))))

let test_cct_merge_flag_mismatch () =
  let a = build [ E ("M", 0); X ]
  and b = build ~merge_call_sites:true [ E ("M", 0); X ] in
  match merge2 a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on merged-flag mismatch"

let test_cct_merge_no_aliasing () =
  (* A record only one shard reached is copied, never aliased. *)
  let a = build [ E ("M", 0); X ]
  and b = build [ E ("M", 0); E ("B", 2); X; X ] in
  let merged = merge2 a b in
  let find t p =
    Cct.fold (fun acc n -> if Cct.proc n = p then Some n else acc) None t
  in
  let mb = Option.get (find merged "B") in
  (Cct.data mb).(0) <- 999;
  Alcotest.(check int) "shard data untouched" 1
    (Cct.data (Option.get (find b "B"))).(0)

(* {2 Mutation coverage: seeded merge defects}

   In the spirit of Test_mutation: each mutant is a plausibly-buggy merge
   — a dropped accumulator sum, swapped call-site keys, a lost recursion
   backedge — and the law suite must reject every one. *)

(* Defect 1: on paths both shards executed, the first shard's accumulators
   win and the second's are silently dropped. *)
let mutant_drop_sum a b =
  let m = Profile.merge a b in
  {
    m with
    Profile.procs =
      List.map
        (fun (pp : Profile.proc_profile) ->
          match Profile.find_proc a pp.Profile.proc with
          | None -> pp
          | Some pa ->
              {
                pp with
                Profile.paths =
                  List.map
                    (fun (s, mm) ->
                      match List.assoc_opt s pa.Profile.paths with
                      | Some ma -> (s, ma)
                      | None -> (s, mm))
                    pp.Profile.paths;
              })
        m.Profile.procs;
  }

let profile_laws_hold merge a b =
  view (merge a b) = view (merge b a)
  && totals (merge a b) = add3 (totals a) (totals b)

let test_mutant_dropped_sum () =
  let p = Lazy.force fixture in
  Alcotest.(check bool) "correct merge passes the laws" true
    (profile_laws_hold Profile.merge p p);
  Alcotest.(check bool) "dropped accumulator sum is caught" false
    (profile_laws_hold mutant_drop_sum p p)

(* Text-level corruption of a serialised CCT shard, as a buggy disk/merge
   pipeline would produce it. *)
let transform_edges f text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | [ "edge"; from_; site; target; back; kind; calls ] ->
             f ~from_ ~site ~target ~back ~kind ~calls
         | _ -> Some line)
  |> String.concat "\n"

let reload text = Cct_io.of_string ~codec:Cct_io.metrics_codec text

let store cct = Cct_io.to_string ~codec:Cct_io.metrics_codec cct

(* Defect 2: the shard's call-site keys are rotated, attributing calls to
   the wrong slot. *)
let swap_sites text =
  transform_edges
    (fun ~from_ ~site ~target ~back ~kind ~calls ->
      let site =
        if from_ = "0" then site
        else string_of_int ((int_of_string site + 1) mod 3)
      in
      Some (String.concat " " [ "edge"; from_; site; target; back; kind; calls ]))
    text

(* Defect 3: recursion backedges are dropped on the way to disk. *)
let drop_backedges text =
  transform_edges
    (fun ~from_ ~site ~target ~back ~kind ~calls ->
      if back = "1" then None
      else
        Some
          (String.concat " " [ "edge"; from_; site; target; back; kind; calls ]))
    text

let cct_shard_law corrupt sa sb =
  (* shard-split-equals-whole, with shard b passing through the (possibly
     corrupting) serialisation pipeline *)
  let b = reload (corrupt (store (build sb))) in
  shape (Cct.root (merge2 (build sa) b))
  = shape (Cct.root (build (sa @ sb)))

let test_mutant_swapped_sites () =
  let sa = [ E ("M", 0); E ("A", 1); X; X ]
  and sb = [ E ("M", 0); E ("A", 1); X; E ("B", 2); X; X ] in
  Alcotest.(check bool) "clean pipeline passes" true (cct_shard_law Fun.id sa sb);
  Alcotest.(check bool) "swapped call-site keys are caught" false
    (cct_shard_law swap_sites sa sb)

let test_mutant_lost_backedge () =
  let sa = [ E ("M", 0); E ("R", 1); E ("R", 1); X; X; X ] in
  Alcotest.(check bool) "clean pipeline passes" true (cct_shard_law Fun.id sa sa);
  Alcotest.(check bool) "lost backedge is caught" false
    (cct_shard_law drop_backedges sa sa)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_merge_commutes;
    QCheck_alcotest.to_alcotest prop_merge_assoc;
    QCheck_alcotest.to_alcotest prop_merge_identity;
    QCheck_alcotest.to_alcotest prop_merge_conserves;
    Alcotest.test_case "merge of a real run's profile" `Quick
      test_merge_real_run;
    Alcotest.test_case "PIC mismatch rejected" `Quick test_merge_pic_mismatch;
    Alcotest.test_case "numbering mismatch rejected" `Quick
      test_merge_numbering_mismatch;
    Alcotest.test_case "saved profile roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "saved profile totals" `Quick test_io_totals;
    Alcotest.test_case "shard merge sums" `Quick test_io_merge_self;
    Alcotest.test_case "hash mismatch diag" `Quick test_io_merge_hash_mismatch;
    Alcotest.test_case "mode mismatch diag" `Quick test_io_merge_mode_mismatch;
    Alcotest.test_case "PIC mismatch diag" `Quick test_io_merge_pic_mismatch;
    Alcotest.test_case "path-count mismatch diag" `Quick
      test_io_merge_npaths_mismatch;
    Alcotest.test_case "profile parse errors" `Quick test_io_parse_errors;
    Alcotest.test_case "cct merge = serial union" `Quick
      test_cct_merge_is_serial_union;
    Alcotest.test_case "cct merge commutes" `Quick test_cct_merge_commutes;
    Alcotest.test_case "cct merge associates" `Quick test_cct_merge_assoc;
    Alcotest.test_case "empty cct is the identity" `Quick
      test_cct_merge_identity;
    Alcotest.test_case "cct merge sums backedges" `Quick
      test_cct_merge_backedges;
    Alcotest.test_case "merged-call-site trees unify" `Quick
      test_cct_merge_call_sites;
    Alcotest.test_case "merged-flag mismatch rejected" `Quick
      test_cct_merge_flag_mismatch;
    Alcotest.test_case "merge copies shard data" `Quick
      test_cct_merge_no_aliasing;
    Alcotest.test_case "mutant: dropped accumulator sum" `Quick
      test_mutant_dropped_sum;
    Alcotest.test_case "mutant: swapped call-site keys" `Quick
      test_mutant_swapped_sites;
    Alcotest.test_case "mutant: lost backedge" `Quick test_mutant_lost_backedge;
  ]
