(* Unit tests of the microarchitecture model. *)

open Pp_machine

let check = Alcotest.check

let small_geom =
  { Config.size_bytes = 256; line_bytes = 32; associativity = 1 }

let test_cache_direct_mapped () =
  let c = Cache.create small_geom in
  (* 256B direct-mapped, 32B lines -> 8 sets. *)
  check Alcotest.int "sets" 8 (Cache.sets c);
  Alcotest.(check bool) "cold miss" false (Cache.read c 0);
  Alcotest.(check bool) "hit same line" true (Cache.read c 24);
  Alcotest.(check bool) "hit same addr" true (Cache.read c 0);
  (* 256 bytes away maps to the same set: conflict. *)
  Alcotest.(check bool) "conflict miss" false (Cache.read c 256);
  Alcotest.(check bool) "evicted" false (Cache.read c 0);
  check Alcotest.int "accesses" 5 (Cache.accesses c);
  check Alcotest.int "misses" 3 (Cache.misses c)

let test_cache_two_way_lru () =
  let c =
    Cache.create { Config.size_bytes = 256; line_bytes = 32; associativity = 2 }
  in
  (* 4 sets x 2 ways.  Three conflicting lines: LRU keeps the last two. *)
  ignore (Cache.read c 0);
  ignore (Cache.read c 256);
  Alcotest.(check bool) "both resident" true (Cache.read c 0);
  ignore (Cache.read c 512);
  (* evicts 256 (LRU), keeps 0 *)
  Alcotest.(check bool) "0 kept" true (Cache.read c 0);
  Alcotest.(check bool) "256 evicted" false (Cache.read c 256)

let test_cache_write_no_allocate () =
  let c = Cache.create small_geom in
  Alcotest.(check bool) "write miss" false (Cache.write c 64);
  (* Non-allocating: still absent. *)
  Alcotest.(check bool) "probe absent" false (Cache.probe c 64);
  ignore (Cache.read c 64);
  Alcotest.(check bool) "write hit after read" true (Cache.write c 64)

let test_cache_probe_no_disturb () =
  let c = Cache.create small_geom in
  ignore (Cache.read c 0);
  ignore (Cache.probe c 992);
  Alcotest.(check bool) "probe did not fill" false (Cache.probe c 992);
  check Alcotest.int "probe not counted" 1 (Cache.accesses c)

let test_branch_predictor () =
  let bp = Branch_pred.create ~table_size:16 in
  (* Weakly-taken initial state: first taken branch predicted correctly. *)
  Alcotest.(check bool) "initial taken ok" true
    (Branch_pred.predict_and_update bp ~addr:0 ~taken:true);
  (* Saturate towards taken, then two not-takens: first mispredicted. *)
  ignore (Branch_pred.predict_and_update bp ~addr:0 ~taken:true);
  Alcotest.(check bool) "sudden not-taken mispredicted" false
    (Branch_pred.predict_and_update bp ~addr:0 ~taken:false);
  Alcotest.(check bool) "still predicted taken (2-bit hysteresis)" false
    (Branch_pred.predict_and_update bp ~addr:0 ~taken:false);
  Alcotest.(check bool) "now predicts not-taken" true
    (Branch_pred.predict_and_update bp ~addr:0 ~taken:false);
  (* A loop branch pattern TTTTN TTTTN ... mispredicts ~1/5. *)
  Branch_pred.clear bp;
  let mispredicts = ref 0 in
  for i = 0 to 99 do
    let taken = i mod 5 <> 4 in
    if not (Branch_pred.predict_and_update bp ~addr:64 ~taken) then
      incr mispredicts
  done;
  Alcotest.(check bool)
    (Printf.sprintf "loop branch mispredicts %d/100" !mispredicts)
    true
    (!mispredicts >= 15 && !mispredicts <= 25)

let test_store_buffer () =
  let sb = Store_buffer.create ~entries:2 in
  (* Two stores fill the buffer; the third stalls until the first drains. *)
  check Alcotest.int "no stall 1" 0 (Store_buffer.push sb ~now:0 ~drain:10);
  check Alcotest.int "no stall 2" 0 (Store_buffer.push sb ~now:1 ~drain:10);
  (* First completes at 10, second at 20.  At now=2 the buffer is full:
     stall until 10. *)
  check Alcotest.int "stall until first drains" 8
    (Store_buffer.push sb ~now:2 ~drain:10);
  (* Long after everything drained: no stall. *)
  check Alcotest.int "drained" 0 (Store_buffer.push sb ~now:1000 ~drain:10);
  check Alcotest.int "occupancy" 1 (Store_buffer.occupancy sb ~now:1000)

let test_store_buffer_serialised () =
  let sb = Store_buffer.create ~entries:8 in
  (* Back-to-back stores drain one after another, not in parallel. *)
  ignore (Store_buffer.push sb ~now:0 ~drain:5);
  ignore (Store_buffer.push sb ~now:0 ~drain:5);
  ignore (Store_buffer.push sb ~now:0 ~drain:5);
  (* Serialised completions at 5, 10 and 15. *)
  check Alcotest.int "all in flight at 4" 3 (Store_buffer.occupancy sb ~now:4);
  check Alcotest.int "two left at 7" 2 (Store_buffer.occupancy sb ~now:7);
  check Alcotest.int "one left at 12" 1 (Store_buffer.occupancy sb ~now:12);
  check Alcotest.int "empty at 15" 0 (Store_buffer.occupancy sb ~now:15)

let test_fp_unit () =
  let fp = Fp_unit.create Config.default ~nregs:8 in
  (* f2 = f0 + f1 at cycle 0: ready at 3.  A dependent op at cycle 1 stalls
     2 cycles. *)
  check Alcotest.int "no stall on ready srcs" 0
    (Fp_unit.issue fp ~now:0 ~cls:Fp_unit.Fp_add ~dst:2 ~srcs:[ 0; 1 ]);
  check Alcotest.int "dependent stalls" 2
    (Fp_unit.issue fp ~now:1 ~cls:Fp_unit.Fp_add ~dst:3 ~srcs:[ 2 ]);
  (* dst 3 issued at 3, ready at 6; a store of f3 at cycle 4 stalls 2. *)
  check Alcotest.int "consumer stalls" 2 (Fp_unit.use fp ~now:4 ~src:3);
  (* Divides are long. *)
  Fp_unit.clear fp;
  ignore (Fp_unit.issue fp ~now:0 ~cls:Fp_unit.Fp_div ~dst:4 ~srcs:[ 0 ]);
  check Alcotest.int "div latency" 12 (Fp_unit.use fp ~now:0 ~src:4);
  (* define resets availability. *)
  Fp_unit.define fp ~now:100 ~dst:4;
  check Alcotest.int "defined ready" 0 (Fp_unit.use fp ~now:100 ~src:4)

let test_counters_and_pics () =
  let c = Counters.create () in
  Counters.select c ~pic0:Event.Dcache_read_misses ~pic1:Event.Instructions;
  Counters.bump c Event.Dcache_read_misses 7;
  Counters.bump c Event.Instructions 100;
  check Alcotest.int "pic0" 7 (Counters.read_pic c 0);
  check Alcotest.int "pic1" 100 (Counters.read_pic c 1);
  Counters.zero_pics c;
  check Alcotest.int "zeroed" 0 (Counters.read_pic c 0);
  Counters.bump c Event.Dcache_read_misses 3;
  check Alcotest.int "counts since zero" 3 (Counters.read_pic c 0);
  check Alcotest.int "total unaffected" 10
    (Counters.total c Event.Dcache_read_misses);
  (* write_pic restores a saved value. *)
  Counters.write_pic c 0 1000;
  check Alcotest.int "restored" 1000 (Counters.read_pic c 0);
  Counters.bump c Event.Dcache_read_misses 1;
  check Alcotest.int "accrues after restore" 1001 (Counters.read_pic c 0)

let test_pic_wrap_32bit () =
  let c = Counters.create () in
  Counters.select c ~pic0:Event.Cycles ~pic1:Event.Instructions;
  Counters.zero_pics c;
  (* A PIC is a 32-bit window: 2^32 + 5 events read back as 5 — the
     overflow hazard of 3.3 that path-length intervals avoid. *)
  Counters.bump c Event.Cycles ((1 lsl 32) + 5);
  check Alcotest.int "wraps" 5 (Counters.read_pic c 0);
  check Alcotest.int "full total kept" ((1 lsl 32) + 5)
    (Counters.total c Event.Cycles)

let test_machine_integration () =
  let m = Machine.create Config.default in
  let c = Machine.counters m in
  (* A fetch costs one instruction and at least one cycle. *)
  Machine.fetch m ~addr:0x40000000;
  check Alcotest.int "one instruction" 1 (Counters.total c Event.Instructions);
  Alcotest.(check bool) "cycles advanced" true (Machine.now m >= 1);
  (* A load miss costs the penalty. *)
  let before = Machine.now m in
  Machine.load m ~addr:0x20000;
  check Alcotest.int "read miss counted" 1
    (Counters.total c Event.Dcache_read_misses);
  check Alcotest.int "miss penalty" (Config.default.Config.dcache_miss_penalty)
    (Machine.now m - before);
  (* Same line again: free. *)
  let before = Machine.now m in
  Machine.load m ~addr:0x20008;
  check Alcotest.int "hit costs nothing" 0 (Machine.now m - before);
  (* Combined miss event mirrors read+write misses. *)
  Machine.store m ~addr:0x30000;
  check Alcotest.int "dc_miss = rd + wr" 2 (Counters.total c Event.Dcache_misses);
  (* Reset clears everything. *)
  Machine.reset m;
  check Alcotest.int "reset" 0 (Counters.total c Event.Instructions);
  check Alcotest.int "clock reset" 0 (Machine.now m)

let test_icache_and_mispredict_accounting () =
  let m = Machine.create Config.default in
  let c = Machine.counters m in
  (* Same line: one miss then hits. *)
  Machine.fetch m ~addr:0x40000000;
  Machine.fetch m ~addr:0x40000004;
  Machine.fetch m ~addr:0x4000001c;
  check Alcotest.int "one icache miss" 1 (Counters.total c Event.Icache_misses);
  (* Next line misses again. *)
  Machine.fetch m ~addr:0x40000020;
  check Alcotest.int "second line misses" 2
    (Counters.total c Event.Icache_misses);
  (* Mispredict stalls = mispredicts x penalty. *)
  let m = Machine.create Config.default in
  let c = Machine.counters m in
  for i = 0 to 9 do
    Machine.branch m ~addr:0x40000000 ~taken:(i mod 2 = 0)
  done;
  let mp = Counters.total c Event.Branch_mispredicts in
  Alcotest.(check bool) "alternating mispredicts a lot" true (mp >= 4);
  check Alcotest.int "stall cycles = penalty x mispredicts"
    (mp * Config.default.Config.mispredict_penalty)
    (Counters.total c Event.Mispredict_stalls)

let test_config_validation () =
  let bad =
    { Config.default with
      Config.dcache =
        { Config.size_bytes = 1000; line_bytes = 32; associativity = 1 } }
  in
  (match Config.validate bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-power-of-two size");
  let bad2 = { Config.default with Config.mispredict_penalty = 0 } in
  match Config.validate bad2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of zero penalty"

let prop_cache_miss_count_matches_reference =
  (* The cache's miss count equals a naive reference simulation on a random
     access trace. *)
  QCheck.Test.make ~name:"cache agrees with reference simulation" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let geom =
        { Config.size_bytes = 512; line_bytes = 32; associativity = 2 }
      in
      let c = Cache.create geom in
      (* Reference: per set, a list of lines in LRU order. *)
      let nsets = 512 / (32 * 2) in
      let sets = Array.make nsets [] in
      let ref_misses = ref 0 in
      for _ = 1 to 500 do
        let addr = Random.State.int rng 4096 in
        let line = addr / 32 in
        let set = line mod nsets in
        (if List.mem line sets.(set) then
           sets.(set) <- line :: List.filter (fun l -> l <> line) sets.(set)
         else begin
           incr ref_misses;
           let kept =
             if List.length sets.(set) >= 2 then
               [ List.hd sets.(set) ]
             else sets.(set)
           in
           sets.(set) <- line :: kept
         end);
        ignore (Cache.read c addr)
      done;
      Cache.misses c = !ref_misses)

(* {2 Batched block events == per-instruction calls}

   The compiled engine reports a block's machine events either as
   interleaved slow calls (precise tier), as [block_static] +
   [block_step] (ordered batch), or as [block_bulk] (fetch/load-only
   batch).  Drive all three from the same random event stream and
   require bit-identical counters and clock after every block — internal
   state divergence (cache, store buffer, FP scoreboard) would surface
   in a later block's snapshot. *)

type ev =
  | F of int  (* instruction fetch at address *)
  | L of int  (* data read *)
  | S of int  (* data write *)
  | FI of Fp_unit.op_class * int * int * int  (* issue cls dst s1 s2 *)
  | FU of int
  | FD of int

let gen_block rng base =
  let n = 3 + Random.State.int rng 12 in
  let evs = ref [] in
  let pc = ref base in
  let data () = 4 * Random.State.int rng 2048 in
  for _ = 1 to n do
    evs := F !pc :: !evs;
    pc := !pc + 4;
    (match Random.State.int rng 8 with
    | 0 | 1 -> evs := L (data ()) :: !evs
    | 2 | 3 -> evs := S (data ()) :: !evs
    | 4 ->
        let cls =
          match Random.State.int rng 3 with
          | 0 -> Fp_unit.Fp_add
          | 1 -> Fp_unit.Fp_mul
          | _ -> Fp_unit.Fp_div
        in
        evs :=
          FI
            ( cls,
              Random.State.int rng 8,
              Random.State.int rng 8,
              Random.State.int rng 8 )
          :: !evs
    | 5 -> evs := FU (Random.State.int rng 8) :: !evs
    | 6 -> evs := FD (Random.State.int rng 8) :: !evs
    | _ -> ())
  done;
  (List.rev !evs, !pc)

let apply_slow m evs =
  List.iter
    (function
      | F a -> Machine.fetch m ~addr:a
      | L a -> Machine.load m ~addr:a
      | S a -> Machine.store m ~addr:a
      | FI (cls, dst, s1, s2) ->
          Machine.fp_issue m ~cls ~dst ~srcs:[ s1; s2 ]
      | FU s -> Machine.fp_use m ~src:s
      | FD d -> Machine.fp_define m ~dst:d)
    evs

(* Mirror of the compiler's op builder: fuse fetch runs, record one
   leader per distinct icache line of the block, slot dynamic
   addresses. *)
let ops_of_spec config evs =
  let line_bytes = config.Config.icache.Config.line_bytes in
  let ops_rev = ref [] in
  let pend = ref 0 in
  let leaders_rev = ref [] in
  let last_line = ref min_int in
  let dyn_rev = ref [] in
  let flush () =
    if !pend > 0 then begin
      ops_rev :=
        Machine.Bfetch
          { count = !pend; leaders = Array.of_list (List.rev !leaders_rev) }
        :: !ops_rev;
      pend := 0;
      leaders_rev := []
    end
  in
  let emit op = flush (); ops_rev := op :: !ops_rev in
  List.iter
    (function
      | F a ->
          let line = a / line_bytes in
          if line <> !last_line then leaders_rev := a :: !leaders_rev;
          last_line := line;
          incr pend
      | L a -> dyn_rev := a :: !dyn_rev; emit (Machine.Bload (List.length !dyn_rev - 1))
      | S a -> dyn_rev := a :: !dyn_rev; emit (Machine.Bstore (List.length !dyn_rev - 1))
      | FI (cls, dst, s1, s2) -> emit (Machine.Bfp_issue { cls; dst; s1; s2 })
      | FU s -> emit (Machine.Bfp_use s)
      | FD d -> emit (Machine.Bfp_define d))
    evs;
  flush ();
  (Array.of_list (List.rev !ops_rev), Array.of_list (List.rev !dyn_rev))

let count p evs = List.length (List.filter p evs)

let apply_batched m evs =
  let ops, dyn = ops_of_spec (Machine.config m) evs in
  Machine.block_static m
    ~insts:(count (function F _ -> true | _ -> false) evs)
    ~loads:(count (function L _ -> true | _ -> false) evs)
    ~stores:(count (function S _ -> true | _ -> false) evs)
    ~fpops:(count (function FI _ -> true | _ -> false) evs);
  Machine.block_step m ops ~dyn

let bulk_eligible evs =
  List.for_all (function F _ | L _ -> true | _ -> false) evs

let apply_bulk m evs =
  let ops, dyn = ops_of_spec (Machine.config m) evs in
  let leaders =
    Array.concat
      (List.filter_map
         (function Machine.Bfetch { leaders; _ } -> Some leaders | _ -> None)
         (Array.to_list ops))
  in
  Machine.block_bulk m
    ~fetches:(count (function F _ -> true | _ -> false) evs)
    ~leaders ~dyn ~nloads:(Array.length dyn)

let snapshot m =
  let c = Machine.counters m in
  String.concat " "
    (List.map
       (fun e -> Printf.sprintf "%s=%d" (Event.name e) (Counters.total c e))
       Event.all)
  ^ Printf.sprintf " now=%d" (Machine.now m)

let prop_batched_equals_slow =
  QCheck.Test.make ~count:12
    ~name:"block_static+block_step / block_bulk == per-instruction calls"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 11 |] in
      let slow = Machine.create Config.default in
      let batch = Machine.create Config.default in
      let line_bytes = Config.default.Config.icache.Config.line_bytes in
      Machine.fp_frame slow ~nregs:8;
      Machine.fp_frame batch ~nregs:8;
      let base = ref 4096 in
      let ok = ref true in
      for _ = 1 to 40 do
        (* Occasionally jump back so icache lines conflict and re-hit. *)
        if Random.State.int rng 4 = 0 then
          base := 4096 + (4 * Random.State.int rng 64);
        let evs, term_addr = gen_block rng !base in
        apply_slow slow evs;
        if bulk_eligible evs && Random.State.bool rng then
          apply_bulk batch evs
        else apply_batched batch evs;
        (* Terminator: slow fetch+branch vs fetch_term (probe elided when
           the terminator shares the last body fetch's line) +
           branch_hot. *)
        let taken = Random.State.bool rng in
        Machine.fetch slow ~addr:term_addr;
        Machine.branch slow ~addr:term_addr ~taken;
        let probe = term_addr / line_bytes <> (term_addr - 4) / line_bytes in
        Machine.fetch_term batch ~addr:term_addr ~probe;
        Machine.branch_hot batch ~addr:term_addr ~taken;
        base := term_addr + 4;
        if snapshot slow <> snapshot batch then ok := false
      done;
      if not !ok then
        QCheck.Test.fail_reportf "diverged:@.slow  %s@.batch %s"
          (snapshot slow) (snapshot batch);
      true)

(* Satellite checks for pp predict: the batched cache path the compiled
   engine uses must stay observably identical to per-probe reads at
   higher associativities, and Config.validate must reject the
   geometries the predictor would otherwise model nonsensically. *)

let prop_read_many_equals_reads =
  QCheck.Test.make ~count:60
    ~name:"read_many == successive reads (associativity >= 4)"
    QCheck.(pair (int_range 0 10_000) (int_range 4 8))
    (fun (seed, assoc) ->
      let rng = Random.State.make [| seed; 23 |] in
      let geom =
        { Config.size_bytes = 1024 * assoc; line_bytes = 32;
          associativity = assoc }
      in
      let a = Cache.create geom and b = Cache.create geom in
      let span = 65536 in
      let ok = ref true in
      for _ = 1 to 25 do
        let n = 1 + Random.State.int rng 16 in
        let addrs = Array.init 16 (fun _ -> Random.State.int rng span) in
        let slow = ref 0 in
        for i = 0 to n - 1 do
          if not (Cache.read a addrs.(i)) then incr slow
        done;
        let batched = Cache.read_many b addrs n in
        if batched <> !slow then ok := false;
        for l = 0 to (span / 32) - 1 do
          if Cache.probe a (l * 32) <> Cache.probe b (l * 32) then ok := false
        done;
        if Cache.accesses a <> Cache.accesses b
           || Cache.misses a <> Cache.misses b
        then ok := false
      done;
      if not !ok then
        QCheck.Test.fail_reportf "read_many diverged at assoc %d" assoc;
      true)

let contains ~needle msg =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let expect_invalid ~needle f =
  match f () with
  | exception Invalid_argument msg ->
      if not (contains ~needle msg) then
        Alcotest.failf "diagnostic %S does not mention %S" msg needle
  | (_ : Config.t) ->
      Alcotest.failf "expected Invalid_argument mentioning %S" needle

let test_config_validation_edges () =
  let dgeom g = { Config.default with Config.dcache = g } in
  (* Non-power-of-two line size, with the cache named in the message. *)
  expect_invalid ~needle:"icache" (fun () ->
      Config.validate
        { Config.default with
          Config.icache =
            { Config.size_bytes = 16384; line_bytes = 24; associativity = 2 }
        });
  expect_invalid ~needle:"line size" (fun () ->
      Config.validate
        (dgeom { Config.size_bytes = 16384; line_bytes = 48; associativity = 1 }));
  (* Associativity exceeding the line count: line * assoc no longer
     divides size, i.e. there is not even one whole set. *)
  expect_invalid ~needle:"dcache" (fun () ->
      Config.validate
        (dgeom
           { Config.size_bytes = 16384; line_bytes = 32; associativity = 1024 }));
  expect_invalid ~needle:"associativity" (fun () ->
      Config.validate
        (dgeom { Config.size_bytes = 16384; line_bytes = 32; associativity = 0 }));
  (* Zero penalties and latencies, each named. *)
  expect_invalid ~needle:"store_drain_cycles" (fun () ->
      Config.validate { Config.default with Config.store_drain_cycles = 0 });
  expect_invalid ~needle:"fp_div_latency" (fun () ->
      Config.validate { Config.default with Config.fp_div_latency = 0 });
  expect_invalid ~needle:"icache_miss_penalty" (fun () ->
      Config.validate { Config.default with Config.icache_miss_penalty = 0 })

let suite =
  [
    Alcotest.test_case "direct-mapped cache" `Quick test_cache_direct_mapped;
    Alcotest.test_case "two-way LRU" `Quick test_cache_two_way_lru;
    Alcotest.test_case "write no-allocate" `Quick test_cache_write_no_allocate;
    Alcotest.test_case "probe is non-destructive" `Quick
      test_cache_probe_no_disturb;
    Alcotest.test_case "branch predictor 2-bit" `Quick test_branch_predictor;
    Alcotest.test_case "store buffer stalls when full" `Quick
      test_store_buffer;
    Alcotest.test_case "store buffer serialises drains" `Quick
      test_store_buffer_serialised;
    Alcotest.test_case "fp scoreboard" `Quick test_fp_unit;
    Alcotest.test_case "counters and PICs" `Quick test_counters_and_pics;
    Alcotest.test_case "PIC 32-bit wrap" `Quick test_pic_wrap_32bit;
    Alcotest.test_case "machine integration" `Quick test_machine_integration;
    Alcotest.test_case "icache and mispredict accounting" `Quick
      test_icache_and_mispredict_accounting;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config validation: predictor edge cases" `Quick
      test_config_validation_edges;
    QCheck_alcotest.to_alcotest prop_cache_miss_count_matches_reference;
    QCheck_alcotest.to_alcotest prop_batched_equals_slow;
    QCheck_alcotest.to_alcotest prop_read_many_equals_reads;
  ]
