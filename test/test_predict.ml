(* pp predict: static per-path bounds certified against measured counters. *)

module Predict_run = Pp_run.Predict_run
module Instrument = Pp_instrument.Instrument
module Engine = Pp_vm.Engine
module Registry = Pp_workloads.Registry
module Workload = Pp_workloads.Workload

let all_modes =
  Instrument.[ Edge_freq; Flow_freq; Flow_hw; Context_hw; Context_flow ]

let budget = 300_000

let workload name =
  match Registry.find name with
  | Some w -> Workload.compile w
  | None -> Alcotest.failf "unknown workload %s" name

let check_sound ~ctx (o : Predict_run.outcome) =
  List.iter
    (fun e -> Printf.eprintf "%s: %s\n%!" ctx e)
    (Predict_run.errors o);
  Printf.eprintf
    "%s: paths %d windows %d confirmed %d vacuous %d refuted %d slack %.2f%s\n%!"
    ctx (List.length o.rows) o.windows o.confirmed o.vacuous o.refuted
    o.mean_slack
    (if o.trapped then " (trapped)" else "");
  Alcotest.(check int) (ctx ^ " refuted") 0 o.refuted;
  Alcotest.(check (list string)) (ctx ^ " anomalies") [] o.anomalies;
  Alcotest.(check bool) (ctx ^ " measured something") true (o.windows > 0)

(* The full acceptance grid: every registry workload under every mode,
   on both engines — zero refuted rows, zero oracle anomalies. *)
let test_soundness () =
  List.iter
    (fun (w : Workload.t) ->
      let prog = Workload.compile w in
      List.iter
        (fun mode ->
          List.iter
            (fun engine ->
              let o = Predict_run.run ~budget ~engine ~mode prog in
              check_sound
                ~ctx:
                  (Printf.sprintf "%s/%s/%s" w.name
                     (Instrument.mode_name mode)
                     (Engine.kind_name engine))
                o)
            Engine.kinds)
        all_modes)
    Registry.all

(* The two engines must also certify identically: same paths, same
   measurements, same verdicts. *)
let test_engines_agree () =
  let prog = workload "li_like" in
  List.iter
    (fun mode ->
      let render engine =
        let o = Predict_run.run ~budget ~engine ~mode prog in
        Format.asprintf "%a" (fun ppf -> Predict_run.render_table ppf) o
      in
      let strip s =
        (* The engine name itself differs; compare everything after the
           header line. *)
        match String.index_opt s '\n' with
        | Some i -> String.sub s (i + 1) (String.length s - i - 1)
        | None -> s
      in
      Alcotest.(check string)
        (Printf.sprintf "engines certify identically (%s)"
           (Instrument.mode_name mode))
        (strip (render Engine.Interpreted))
        (strip (render Engine.Compiled)))
    Instrument.[ Flow_hw; Context_hw ]

(* ------------------------------------------------------------------ *)
(* The demo program: hot-path exactness and fault injection.           *)

let examples_dir =
  let rec find dir n =
    if n = 0 then None
    else
      let candidate = Filename.concat dir "examples/programs" in
      if Sys.file_exists candidate && Sys.is_directory candidate then
        Some candidate
      else find (Filename.dirname dir) (n - 1)
  in
  find (Sys.getcwd ()) 6

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let demo_program () =
  match examples_dir with
  | None -> Alcotest.fail "examples/programs not found above cwd"
  | Some dir ->
      Pp_minic.Compile.program ~name:"predict_demo"
        (read_file (Filename.concat dir "predict_demo.mc"))

let test_demo_exact () =
  let o = Predict_run.run ~mode:Instrument.Context_hw (demo_program ()) in
  (* The rendered table is the shipped golden fixture: the machine is
     deterministic, so the bytes must match exactly. *)
  (match examples_dir with
  | None -> ()
  | Some dir ->
      let golden = read_file (Filename.concat dir "predict_demo.table.golden") in
      let got = Format.asprintf "%a" (fun ppf -> Predict_run.render_table ppf) o in
      Alcotest.(check string) "golden table" golden got);
  check_sound ~ctx:"predict_demo/context-hw" o;
  (* The hot After_backedge path: highest-frequency row.  Its D-miss
     interval must be exact (lo = hi = measured) -- the analysis proved
     both global loads guaranteed hits. *)
  let hot =
    List.fold_left
      (fun acc (r : Predict_run.row) ->
        match acc with
        | Some (b : Predict_run.row) when b.freq >= r.freq -> acc
        | _ -> Some r)
      None o.rows
    |> Option.get
  in
  Alcotest.(check bool) "hot path is hot" true (hot.freq > 100);
  let dmiss =
    List.find (fun (s : Predict_run.mstat) -> s.metric = "dmiss") hot.stats
  in
  Alcotest.(check (option int)) "dmiss hi = lo" (Some dmiss.lo) dmiss.hi;
  Alcotest.(check int) "dmiss measured = lo" dmiss.lo dmiss.measured;
  Alcotest.(check string) "hot path confirmed" "CONFIRMED"
    (Predict_run.verdict_name hot.rverdict)

let test_inject () =
  let prog = demo_program () in
  List.iter
    (fun inj ->
      let o = Predict_run.run ~inject:inj ~mode:Instrument.Context_hw prog in
      Alcotest.(check bool)
        (Printf.sprintf "inject %s refutes" (Predict_run.inject_name inj))
        true (o.refuted > 0);
      Alcotest.(check bool)
        (Printf.sprintf "inject %s located errors" (Predict_run.inject_name inj))
        true
        (Predict_run.errors o <> []);
      Alcotest.(check int)
        (Printf.sprintf "inject %s exit code" (Predict_run.inject_name inj))
        2
        (Predict_run.exit_code [ o ]))
    Predict_run.injects

let suite =
  [
    Alcotest.test_case "soundness: workloads x modes" `Slow test_soundness;
    Alcotest.test_case "soundness: both engines" `Slow test_engines_agree;
    Alcotest.test_case "demo: hot path exact" `Quick test_demo_exact;
    Alcotest.test_case "demo: injected faults refuted" `Quick test_inject;
  ]
