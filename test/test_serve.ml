(* The streaming aggregation service: the binary wire format, the
   bounded-memory aggregator, and the socket end-to-end.

   The load-bearing property is byte-identity: a fault-free streamed
   merge must equal the offline Profile_io.merge_all of the same shards
   exactly, whatever the arrival interleaving or chunking.  Faults must
   degrade exactly as the text shards do — valid prefix salvaged,
   nothing usable rejected, eviction an explicit degraded verdict. *)

module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Wire = Pp_core.Profile_wire
module Serve = Pp_run.Serve

let pm freq m0 m1 = { Profile.freq; m0; m1 }

(* Small synthetic shards with every record species: procs, paths,
   feasible annotations, coverage windows. *)
let shard i =
  Profile_io.canonical
    {
      Profile_io.program_hash = "cafe0123beef";
      mode = "flow+hw";
      pic0 = Event.Dcache_misses;
      pic1 = Event.Instructions;
      procs =
        [
          ( "alpha",
            8,
            [ (0, pm (3 + i) 5 7); (2, pm 10 0 (4 + i)); (5, pm 1 1 1) ] );
          ("beta", 16, [ (1, pm 7 (2 * i) 9); (9, pm 4 4 4) ]);
          ("gamma", 4, [ (3, pm (11 * (i + 1)) 6 2) ]);
        ];
      feasible = [ ("alpha", 6); ("beta", 12) ];
      coverage = [ ("beta", (13 + i, 40 + i)) ];
    }

let shards n = List.init n shard

let saved_eq =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Profile_io.to_string s))
    (fun a b -> Profile_io.to_string a = Profile_io.to_string b)

let merge_all_exn ss =
  match Profile_io.merge_all ss with
  | Ok m -> m
  | Error d -> Alcotest.failf "merge_all: %s" (Pp_ir.Diag.to_string d)

(* {2 Wire format} *)

(* Splitmix-ish chunker so the QCheck property exercises every framing
   boundary: feed the encoded stream in pseudo-random 1..9 byte pieces. *)
let chunks ~seed s =
  let rec go acc pos state =
    if pos >= String.length s then List.rev acc
    else
      let state = (state * 1103515245) + 12345 in
      let k = 1 + ((state lsr 16) mod 9) in
      let k = min k (String.length s - pos) in
      go (String.sub s pos k :: acc) (pos + k) state
  in
  go [] 0 (seed + 1)

let decode_all reader =
  let rec go acc =
    match Wire.next reader with
    | `Frame f -> go (f :: acc)
    | `Need_more -> Ok (List.rev acc)
    | `Corrupt msg -> Error (List.rev acc, msg)
  in
  go []

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip survives any chunking" ~count:60
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, i) ->
      let s = shard i in
      let reader = Wire.reader () in
      List.iter (Wire.feed reader) (chunks ~seed (Wire.encode_saved s));
      match decode_all reader with
      | Error _ -> false
      | Ok frames -> (
          match frames with
          | Wire.Hello h :: rest ->
              let procs =
                List.filter_map
                  (function Wire.Proc p -> Some p | _ -> None)
                  rest
              in
              Profile_io.to_string (Wire.saved_of_frames h procs)
              = Profile_io.to_string s
              && List.exists
                   (function Wire.End _ -> true | _ -> false)
                   rest
          | _ -> false))

let test_wire_corruption_sticky () =
  let s = shard 0 in
  let encoded = Wire.encode_saved s in
  (* Flip a byte inside the first proc frame's payload: its checksum
     must catch it, and the hello before it must survive.  (A flip in a
     frame's length field reads as truncation — Need_more — which is
     the incomplete-stream path, not this test's.) *)
  let hello_len =
    String.length (Wire.encode_frame (List.hd (Wire.frames_of_saved s)))
  in
  let pos = hello_len + 9 + 2 in
  let damaged =
    String.mapi
      (fun i c -> if i = pos then Char.chr (Char.code c lxor 0xff) else c)
      encoded
  in
  let reader = Wire.reader () in
  Wire.feed reader damaged;
  match decode_all reader with
  | Ok _ -> Alcotest.fail "damage was not detected"
  | Error (prefix, _msg) ->
      Alcotest.(check int) "the hello frame before the damage survives" 1
        (List.length prefix);
      (* Sticky: the reader keeps refusing after the damage. *)
      Wire.feed reader (Wire.encode_saved s);
      (match Wire.next reader with
      | `Corrupt _ -> ()
      | _ -> Alcotest.fail "corruption must be sticky")

let test_wire_oversized_rejected () =
  let reader = Wire.reader () in
  let buf = Buffer.create 16 in
  Buffer.add_char buf 'P';
  (* length field far beyond max_payload *)
  Buffer.add_string buf "\xff\xff\xff\x7f";
  Buffer.add_string buf "\x00\x00\x00\x00";
  Wire.feed reader (Buffer.contents buf);
  match Wire.next reader with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized frame must be rejected before allocation"

(* {2 The bounded-memory aggregator} *)

let test_agg_equals_offline () =
  let ss = shards 5 in
  let agg = Serve.agg_create () in
  List.iter
    (fun s ->
      match Serve.agg_add agg s with
      | Ok () -> ()
      | Error d -> Alcotest.failf "agg_add: %s" (Pp_ir.Diag.to_string d))
    ss;
  Alcotest.(check (option saved_eq))
    "incremental fold equals offline merge_all"
    (Some (merge_all_exn ss))
    (Serve.agg_finish agg)

let test_agg_eviction_degrades () =
  let ss = shards 5 in
  let agg = Serve.agg_create ~max_records:3 () in
  List.iter (fun s -> ignore (Serve.agg_add agg s)) ss;
  Alcotest.(check bool) "eviction happened" true (agg.Serve.evicted > 0);
  Alcotest.(check bool) "budget respected" true (Serve.agg_resident agg <= 3);
  (* Deterministic: the same fold evicts the same records. *)
  let agg2 = Serve.agg_create ~max_records:3 () in
  List.iter (fun s -> ignore (Serve.agg_add agg2 s)) ss;
  Alcotest.(check (option saved_eq))
    "eviction is deterministic" (Serve.agg_finish agg)
    (Serve.agg_finish agg2)

let test_agg_spill_is_lossless () =
  let ss = shards 5 in
  let dir = Filename.temp_file "pp-spill" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () ->
      let agg = Serve.agg_create ~max_records:3 ~spill_dir:dir () in
      List.iter
        (fun s ->
          match Serve.agg_add agg s with
          | Ok () -> ()
          | Error d -> Alcotest.failf "agg_add: %s" (Pp_ir.Diag.to_string d))
        ss;
      Alcotest.(check bool) "spilled at least once" true
        (agg.Serve.spilled > 0);
      Alcotest.(check int) "nothing evicted" 0 agg.Serve.evicted;
      Alcotest.(check (option saved_eq))
        "spill + consolidate is lossless"
        (Some (merge_all_exn ss))
        (Serve.agg_finish agg))

(* {2 Socket end-to-end} *)

let temp_socket () =
  let path = Filename.temp_file "pp-serve" ".sock" in
  Sys.remove path;
  path

(* Fork one sender per shard (children must _exit: they share the test
   runner's state) and aggregate in this process. *)
let e2e ?corrupt_first ss =
  let socket = temp_socket () in
  let pids =
    List.mapi
      (fun i s ->
        match Unix.fork () with
        | 0 ->
            let corrupt_after = if i = 0 then corrupt_first else None in
            let code =
              match Serve.send_saved ?corrupt_after ~socket s with
              | Ok () -> 0
              | Error _ -> 1
              | exception _ -> 1
            in
            Unix._exit code
        | pid -> pid)
      ss
  in
  let verdict = Serve.serve ~socket ~expect:(List.length ss) () in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  verdict

let test_e2e_byte_identical () =
  let ss = shards 6 in
  let v = e2e ss in
  Alcotest.(check int) "all streams accepted" 6 v.Serve.accepted;
  Alcotest.(check bool) "not degraded" false (Serve.degraded v);
  Alcotest.(check (option saved_eq))
    "streamed merge equals offline merge_all"
    (Some (merge_all_exn ss))
    v.Serve.merged

let test_e2e_salvages_corrupt_stream () =
  let ss = shards 4 in
  (* Hello + one proc frame arrive intact, then garbage: the prefix must
     be salvaged, the rest dropped, and the service not degraded. *)
  let v = e2e ~corrupt_first:2 ss in
  Alcotest.(check int) "other streams accepted" 3 v.Serve.accepted;
  Alcotest.(check int) "torn stream salvaged" 1 v.Serve.salvaged;
  Alcotest.(check bool) "salvage alone never degrades" false
    (Serve.degraded v);
  (* The salvaged result equals the offline merge of the intact shards
     plus the torn shard's first procedure. *)
  let torn = shard 0 in
  let prefix =
    {
      torn with
      Profile_io.procs = [ List.hd torn.Profile_io.procs ];
      feasible =
        List.filter (fun (p, _) -> p = "alpha") torn.Profile_io.feasible;
      coverage = [];
    }
  in
  Alcotest.(check (option saved_eq))
    "salvaged prefix merged exactly"
    (Some (merge_all_exn (prefix :: List.tl ss)))
    v.Serve.merged

(* The aggregator's compatibility baseline is the first stream merged,
   so arrival order decides WHICH side of a mismatch gets rejected.
   Hold the incompatible client on a pipe until the three good streams
   have resolved (snapshot_every:1 fires once per resolved stream), so
   the test is deterministic under any scheduler. *)
let test_e2e_rejects_incompatible () =
  let good = shards 3 in
  let bad = { (shard 0) with Profile_io.mode = "flow+freq" } in
  let socket = temp_socket () in
  let r, w = Unix.pipe () in
  let sender ?gate s =
    match Unix.fork () with
    | 0 ->
        (match gate with
        | Some fd -> ignore (Unix.read fd (Bytes.create 1) 0 1)
        | None -> ());
        let code =
          match Serve.send_saved ~socket s with
          | Ok () -> 0
          | Error _ -> 1
          | exception _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  let pids = List.map sender good @ [ sender ~gate:r bad ] in
  let resolved = ref 0 in
  let release_bad _json =
    incr resolved;
    if !resolved = 3 then ignore (Unix.write w (Bytes.make 1 'g') 0 1)
  in
  let v =
    Serve.serve ~snapshot_every:1 ~snapshot:release_bad ~socket ~expect:4 ()
  in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  Unix.close r;
  Unix.close w;
  Alcotest.(check int) "good streams accepted" 3 v.Serve.accepted;
  Alcotest.(check int) "incompatible stream rejected" 1 v.Serve.rejected;
  Alcotest.(check bool) "rejection degrades the verdict" true
    (Serve.degraded v);
  Alcotest.(check (option saved_eq))
    "the incompatible stream contributed nothing"
    (Some (merge_all_exn good))
    v.Serve.merged

let test_degraded_predicate () =
  let base =
    {
      Serve.expected = 4;
      accepted = 4;
      salvaged = 0;
      rejected = 0;
      spilled = 0;
      evicted_records = 0;
      peak_records = 0;
      bytes = 0;
      snapshots = 0;
      merged = None;
      conflict = None;
    }
  in
  Alcotest.(check bool) "clean run" false (Serve.degraded base);
  Alcotest.(check bool) "salvage alone is clean" false
    (Serve.degraded { base with Serve.accepted = 3; salvaged = 1 });
  Alcotest.(check bool) "short count degrades" true
    (Serve.degraded { base with Serve.accepted = 3 });
  Alcotest.(check bool) "eviction degrades" true
    (Serve.degraded { base with Serve.evicted_records = 1 });
  Alcotest.(check bool) "rejection degrades" true
    (Serve.degraded { base with Serve.accepted = 3; rejected = 1 })

let suite =
  [
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "wire corruption is sticky, prefix survives" `Quick
      test_wire_corruption_sticky;
    Alcotest.test_case "oversized frames rejected" `Quick
      test_wire_oversized_rejected;
    Alcotest.test_case "aggregator equals offline merge" `Quick
      test_agg_equals_offline;
    Alcotest.test_case "eviction bounds memory, degrades, deterministic"
      `Quick test_agg_eviction_degrades;
    Alcotest.test_case "spill keeps the merge lossless" `Quick
      test_agg_spill_is_lossless;
    Alcotest.test_case "e2e streamed merge is byte-identical" `Slow
      test_e2e_byte_identical;
    Alcotest.test_case "e2e corrupt stream salvaged, not degraded" `Slow
      test_e2e_salvages_corrupt_stream;
    Alcotest.test_case "e2e incompatible stream rejected, degraded" `Slow
      test_e2e_rejects_incompatible;
    Alcotest.test_case "degraded verdict predicate" `Quick
      test_degraded_predicate;
  ]
