(* CCT persistence: write/reload round trips, dot rendering. *)

module Cct = Pp_core.Cct
module Cct_io = Pp_core.Cct_io
module Ex = Pp_core.Paper_examples

let check = Alcotest.check

let build_sample () =
  let cct =
    Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> [| 0; 0 |]) ()
  in
  Ex.figure4_trace
    ~enter:(fun proc site ->
      let n = Cct.enter cct ~proc ~nsites:4 ~site ~kind:Cct.Direct in
      (Cct.data n).(0) <- (Cct.data n).(0) + 1;
      (Cct.data n).(1) <- (Cct.data n).(1) + (String.length proc * 10))
    ~exit:(fun () -> Cct.exit cct);
  cct

let structure cct =
  Cct.fold
    (fun acc n ->
      ( Cct.id n,
        Cct.proc n,
        Cct.node_depth n,
        Array.to_list (Cct.data n),
        List.map
          (fun (e : _ Cct.edge) ->
            (e.Cct.site, Cct.id e.Cct.target, e.Cct.is_backedge, e.Cct.calls))
          (Cct.edges n) )
      :: acc)
    [] cct
  |> List.rev

let test_roundtrip () =
  let cct = build_sample () in
  let text = Cct_io.to_string ~codec:Cct_io.metrics_codec cct in
  let cct' = Cct_io.of_string ~codec:Cct_io.metrics_codec text in
  Cct.check_invariants cct';
  Alcotest.(check bool) "identical structure" true
    (structure cct = structure cct');
  (* Serialising the reload gives the same bytes (canonical form). *)
  Alcotest.(check string) "stable fixpoint" text
    (Cct_io.to_string ~codec:Cct_io.metrics_codec cct')

let test_roundtrip_recursive () =
  let cct = Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> [||]) () in
  Ex.figure5_trace
    ~enter:(fun proc site ->
      ignore (Cct.enter cct ~proc ~nsites:4 ~site ~kind:Cct.Direct))
    ~exit:(fun () -> Cct.exit cct);
  (* Close the remaining frames so the tree is quiescent. *)
  Cct.unwind_to_depth cct 0;
  let text = Cct_io.to_string ~codec:Cct_io.metrics_codec cct in
  let cct' = Cct_io.of_string ~codec:Cct_io.metrics_codec text in
  Cct.check_invariants cct';
  Alcotest.(check bool) "backedge preserved" true
    (structure cct = structure cct')

let test_roundtrip_merged () =
  (* A merged-call-site tree: one collapsed slot per record, so several
     callees share slot 0 — the reload must keep the flag (or later
     enters would index per-site slots that don't exist) and the edge
     order within the shared slot. *)
  let cct =
    Cct.create ~merge_call_sites:true
      ~make_data:(fun ~proc:_ ~nsites:_ -> [| 0; 0 |])
      ()
  in
  List.iter
    (fun (proc, site) ->
      ignore (Cct.enter cct ~proc ~nsites:3 ~site ~kind:Cct.Direct);
      Cct.exit cct)
    [ ("A", 0); ("B", 2); ("C", 1) ];
  let text = Cct_io.to_string ~codec:Cct_io.metrics_codec cct in
  let cct' = Cct_io.of_string ~codec:Cct_io.metrics_codec text in
  Cct.check_invariants cct';
  Alcotest.(check bool) "merged flag survives" true (Cct.merged cct');
  Alcotest.(check bool) "identical structure" true
    (structure cct = structure cct');
  (* The reload accepts further calls through the collapsed slot. *)
  ignore (Cct.enter cct' ~proc:"D" ~nsites:5 ~site:4 ~kind:Cct.Direct)

let test_roundtrip_multi_edge_slot () =
  (* An indirect call site reaching several callees gives one slot a list
     of edges (Figure 7); serialisation must preserve their first-use
     order through repeated round trips. *)
  let cct =
    Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> [| 0; 0 |]) ()
  in
  let m = Cct.enter cct ~proc:"M" ~nsites:1 ~site:0 ~kind:Cct.Direct in
  ignore m;
  List.iter
    (fun callee ->
      ignore
        (Cct.enter cct ~proc:callee ~nsites:0 ~site:0 ~kind:Cct.Indirect);
      Cct.exit cct)
    [ "f1"; "f2"; "f3"; "f2" ];
  Cct.unwind_to_depth cct 0;
  let text = Cct_io.to_string ~codec:Cct_io.metrics_codec cct in
  let cct' = Cct_io.of_string ~codec:Cct_io.metrics_codec text in
  Cct.check_invariants cct';
  Alcotest.(check bool) "identical structure" true
    (structure cct = structure cct');
  Alcotest.(check string) "stable fixpoint" text
    (Cct_io.to_string ~codec:Cct_io.metrics_codec cct')

let test_file_roundtrip () =
  let cct = build_sample () in
  let path = Filename.temp_file "cct" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cct_io.to_file ~codec:Cct_io.metrics_codec path cct;
      let cct' = Cct_io.of_file ~codec:Cct_io.metrics_codec path in
      Alcotest.(check bool) "file roundtrip" true
        (structure cct = structure cct'))

let test_escaped_names () =
  let cct = Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> ()) () in
  ignore
    (Cct.enter cct ~proc:"weird name %1" ~nsites:1 ~site:0 ~kind:Cct.Direct);
  let text = Cct_io.to_string ~codec:Cct_io.unit_codec cct in
  let cct' = Cct_io.of_string ~codec:Cct_io.unit_codec text in
  match Cct.children (Cct.root cct') with
  | [ n ] -> Alcotest.(check string) "name survives" "weird name %1"
               (Cct.proc n)
  | _ -> Alcotest.fail "lost the node"

let test_parse_errors () =
  let bad text =
    match Cct_io.of_string ~codec:Cct_io.unit_codec text with
    | exception Cct_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  bad "";
  bad "node 0 -1 0 1 root\n";
  bad "cct 1 2 0\nnode 0 -1 0 1 root \nedge 0 0 7 0 0 1\n";
  bad "cct 1 1 0\nnonsense 1 2 3\n"

let test_dot () =
  let cct = build_sample () in
  let dot = Cct_io.to_dot cct in
  Alcotest.(check bool) "mentions procs" true
    (let has sub =
       let n = String.length dot and m = String.length sub in
       let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
       go 0
     in
     has "digraph cct" && has "\"M\"" && has "\"C\"")

let test_vm_cct_serialises () =
  (* The runtime CCT from an instrumented run survives the round trip with
     its metric payloads. *)
  let prog = Ex.figure1_program () in
  let session =
    Pp_instrument.Driver.prepare
      ~mode:Pp_instrument.Instrument.Context_hw prog
  in
  ignore (Pp_instrument.Driver.run session);
  let cct = Pp_instrument.Driver.cct session in
  let codec =
    {
      Cct_io.encode =
        (fun (d : Pp_vm.Runtime.record_data) ->
          Cct_io.metrics_codec.Cct_io.encode d.Pp_vm.Runtime.metrics);
      decode =
        (fun s ->
          {
            Pp_vm.Runtime.addr = 0;
            metrics = Cct_io.metrics_codec.Cct_io.decode s;
            paths = Hashtbl.create 1;
            ptable_addr = 0;
          });
    }
  in
  let text = Cct_io.to_string ~codec cct in
  let cct' = Cct_io.of_string ~codec text in
  Cct.check_invariants cct';
  Alcotest.(check int) "same records" (Cct.num_nodes cct)
    (Cct.num_nodes cct');
  (* Entry counts preserved. *)
  let entries t =
    Cct.fold
      (fun acc n -> acc + (Cct.data n).Pp_vm.Runtime.metrics.(0))
      0 t
  in
  Alcotest.(check int) "entry counts preserved" (entries cct) (entries cct')

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "roundtrip with recursion" `Quick
      test_roundtrip_recursive;
    Alcotest.test_case "roundtrip with merged call sites" `Quick
      test_roundtrip_merged;
    Alcotest.test_case "roundtrip with a multi-edge slot" `Quick
      test_roundtrip_multi_edge_slot;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "escaped names" `Quick test_escaped_names;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "dot rendering" `Quick test_dot;
    Alcotest.test_case "vm cct serialises" `Quick test_vm_cct_serialises;
  ]
