(* Sampled instrumentation: the determinism and equivalence contracts.

   The gating schedule is a pure function of (seed, procedure, commit
   ordinal, burst, duty) — nothing about the engine, the host, or how
   many pool workers share the run may leak in.  So: the same seed and
   duty must reproduce a byte-identical shard, on either engine, at any
   --jobs; duty 1.0 must be byte-identical to an exhaustive session
   prepared with the same zero-threshold options; and every shard's
   coverage certificate must account exactly for the commits it kept. *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Engine = Pp_vm.Engine
module Sampling = Pp_vm.Sampling
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Pool = Pp_run.Pool

(* Branches, a loop, recursion and two procedures hot enough that any
   schedule drift between two runs shows up in the path frequencies. *)
let src =
  {|
int arr[8];
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void work(int x) {
  int i;
  for (i = 0; i < 6; i = i + 1) {
    if (x % 2 == 0) { arr[i % 8] = arr[i % 8] + x; }
    else { arr[i % 8] = arr[i % 8] - x; }
    x = x + 1;
  }
}
void main() {
  int k;
  for (k = 0; k < 8; k = k + 1) { work(k + fib(6)); }
  int j;
  for (j = 0; j < 8; j = j + 1) { print(arr[j]); }
}
|}

let program = lazy (Pp_minic.Compile.program ~name:"sampled_fixture" src)

(* Sampled sessions force array_threshold = 0; exhaustive comparison
   partners must be prepared with the same options, or the shards differ
   by instrumentation cost alone. *)
let zero_opts =
  { Instrument.default_options with Instrument.array_threshold = 0 }

let shard ?sampling ?(engine = Engine.default)
    ?(mode = Instrument.Flow_hw) () =
  let prog = Lazy.force program in
  let session =
    Driver.prepare ~options:zero_opts ~max_instructions:50_000_000 ~engine
      ?sampling ~mode prog
  in
  ignore (Driver.run session);
  Profile_io.of_profile
    ~coverage:(Driver.coverage session)
    ~program_hash:(Profile_io.program_hash prog)
    ~mode:(Instrument.mode_name mode)
    (Driver.path_profile session)

let shard_string ?sampling ?engine ?mode () =
  Profile_io.to_string (shard ?sampling ?engine ?mode ())

let duties = [| 0.0; 0.125; 0.3; 0.5; 0.75; 1.0 |]

(* {2 duty 1.0 == exhaustive, on both engines} *)

let test_duty_one_exhaustive () =
  List.iter
    (fun engine ->
      let exhaustive = shard_string ~engine () in
      let sampled =
        shard_string ~sampling:(Sampling.create ~duty:1.0 ~seed:3 ()) ~engine
          ()
      in
      Alcotest.(check string)
        (Printf.sprintf "duty 1.0 on %s is byte-identical to exhaustive"
           (Engine.kind_name engine))
        exhaustive sampled;
      (* ...and carries no coverage records: canonical drops the trivial
         sampled = total windows. *)
      Alcotest.(check bool)
        "no coverage records at duty 1.0" true
        ((shard ~sampling:(Sampling.create ~duty:1.0 ~seed:3 ()) ~engine ())
           .Profile_io.coverage
        = []))
    Engine.kinds

(* A disabled controller gates nothing: runtime-toggling sampling off
   mid-deployment degrades to the exhaustive profiler. *)
let test_disabled_is_exhaustive () =
  let exhaustive = shard_string () in
  let s = Sampling.create ~duty:0.2 ~seed:11 () in
  Sampling.set_enabled s false;
  Alcotest.(check string) "disabled controller records everything"
    exhaustive
    (shard_string ~sampling:s ())

(* {2 determinism: same seed + duty -> byte-identical} *)

let prop_reproducible =
  QCheck.Test.make ~name:"same seed and duty replay byte-identically"
    ~count:8
    QCheck.(pair small_nat (int_bound (Array.length duties - 1)))
    (fun (seed, di) ->
      let go () =
        shard_string
          ~sampling:(Sampling.create ~duty:duties.(di) ~seed ())
          ()
      in
      go () = go ())

let prop_engine_agnostic =
  QCheck.Test.make
    ~name:"interpreted and compiled engines sample identically" ~count:6
    QCheck.(pair small_nat (int_bound (Array.length duties - 1)))
    (fun (seed, di) ->
      let go engine =
        shard_string
          ~sampling:(Sampling.create ~duty:duties.(di) ~seed ())
          ~engine ()
      in
      go Engine.Interpreted = go Engine.Compiled)

(* Pool workers fork; the schedule must not notice.  Compute the same
   sampled shard inline and under --jobs 2 and require byte-identity. *)
let test_jobs_independent () =
  let job seed =
    shard_string ~sampling:(Sampling.create ~duty:0.3 ~seed ()) ()
  in
  let inline = List.map job [ 1; 2; 3; 4 ] in
  let forked =
    Pool.map ~jobs:2 job [ 1; 2; 3; 4 ] |> List.map Pool.outcome_ok
  in
  List.iter2
    (fun a b ->
      Alcotest.(check (option string))
        "forked worker reproduces the inline shard" (Some a) b)
    inline forked

(* {2 the coverage certificate} *)

(* Every procedure's window must account exactly for what the shard
   kept: sampled = the frequency sum of that procedure's recorded paths,
   and sampled <= total. *)
let prop_coverage_accounts =
  QCheck.Test.make ~name:"coverage windows account for recorded commits"
    ~count:8
    QCheck.(pair small_nat (int_bound (Array.length duties - 1)))
    (fun (seed, di) ->
      let s =
        shard ~sampling:(Sampling.create ~duty:duties.(di) ~seed ()) ()
      in
      let freq_of proc =
        List.fold_left
          (fun acc (name, _, paths) ->
            if name = proc then
              acc
              + List.fold_left
                  (fun a (_, (m : Profile.path_metrics)) ->
                    a + m.Profile.freq)
                  0 paths
            else acc)
          0 s.Profile_io.procs
      in
      List.for_all
        (fun (proc, (sampled, total)) ->
          sampled <= total && sampled = freq_of proc)
        s.Profile_io.coverage)

(* Coverage survives the save/load roundtrip and sums under merge, with
   a missing window defaulting to the shard's own commit count — so a
   sampled shard composes with an exhaustive one. *)
let test_coverage_merge () =
  let sampled =
    shard ~sampling:(Sampling.create ~duty:0.3 ~seed:5 ()) ()
  in
  let exhaustive = shard () in
  let reloaded = Profile_io.of_string (Profile_io.to_string sampled) in
  Alcotest.(check string) "coverage roundtrips"
    (Profile_io.to_string sampled)
    (Profile_io.to_string reloaded);
  match Profile_io.merge sampled exhaustive with
  | Error d -> Alcotest.failf "merge failed: %s" (Pp_ir.Diag.to_string d)
  | Ok merged ->
      let freq_of (s : Profile_io.saved) proc =
        List.fold_left
          (fun acc (name, _, paths) ->
            if name = proc then
              acc
              + List.fold_left
                  (fun a (_, (m : Profile.path_metrics)) ->
                    a + m.Profile.freq)
                  0 paths
            else acc)
          0 s.Profile_io.procs
      in
      List.iter
        (fun (proc, (sampled_w, total_w)) ->
          let s0, t0 =
            match List.assoc_opt proc sampled.Profile_io.coverage with
            | Some w -> w
            | None -> (freq_of sampled proc, freq_of sampled proc)
          in
          (* The exhaustive shard carries no window; it defaults to its
             own frequency sum on both sides. *)
          let f = freq_of exhaustive proc in
          Alcotest.(check (pair int int))
            (Printf.sprintf "merged window of %s" proc)
            (s0 + f, t0 + f)
            (sampled_w, total_w))
        merged.Profile_io.coverage

(* Sampling needs runtime-dispatched commits; Driver.prepare must force
   the zero array threshold even when options say otherwise. *)
let test_forces_zero_threshold () =
  let prog = Lazy.force program in
  let session =
    Driver.prepare
      ~options:{ Instrument.default_options with Instrument.array_threshold = 64 }
      ~max_instructions:50_000_000
      ~sampling:(Sampling.create ~duty:1.0 ~seed:0 ())
      ~mode:Instrument.Flow_hw prog
  in
  ignore (Driver.run session);
  let with_default_opts = shard ~sampling:(Sampling.create ~duty:1.0 ~seed:0 ()) () in
  Alcotest.(check string) "options' array_threshold is overridden"
    (Profile_io.to_string with_default_opts)
    (Profile_io.to_string
       (Profile_io.of_profile
          ~coverage:(Driver.coverage session)
          ~program_hash:(Profile_io.program_hash prog)
          ~mode:(Instrument.mode_name Instrument.Flow_hw)
          (Driver.path_profile session)))

let suite =
  [
    Alcotest.test_case "duty 1.0 == exhaustive (both engines)" `Slow
      test_duty_one_exhaustive;
    Alcotest.test_case "disabled controller == exhaustive" `Slow
      test_disabled_is_exhaustive;
    Alcotest.test_case "forked workers sample like inline runs" `Slow
      test_jobs_independent;
    Alcotest.test_case "coverage roundtrip and merge law" `Slow
      test_coverage_merge;
    Alcotest.test_case "sampling forces zero array threshold" `Slow
      test_forces_zero_threshold;
    QCheck_alcotest.to_alcotest prop_reproducible;
    QCheck_alcotest.to_alcotest prop_engine_agnostic;
    QCheck_alcotest.to_alcotest prop_coverage_accounts;
  ]
