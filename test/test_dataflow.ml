(* The generic dataflow engine and the stock analyses built on it. *)

open Pp_ir
module Dataflow = Pp_analysis.Dataflow
module Bitset = Dataflow.Bitset
module Liveness = Pp_analysis.Liveness
module Uninit = Pp_analysis.Uninit
module Reaching_defs = Pp_analysis.Reaching_defs
module Lint = Pp_analysis.Lint
module Ball_larus = Pp_core.Ball_larus

let check = Alcotest.check
let int_list = Alcotest.(list int)

module Max = Dataflow.Make (struct
  type t = int

  let equal = Int.equal
  let join = max
  let pp = Format.pp_print_int
end)

module Min = Dataflow.Make (struct
  type t = int

  let equal = Int.equal
  let join = min
  let pp = Format.pp_print_int
end)

(* Forward, join = max, transfer = +1 per block: the final value at EXIT is
   the number of blocks on the longest ENTRY->EXIT path. *)
let test_longest_path () =
  let cfg = Cfg.of_proc (Fixtures.figure1_proc ()) in
  let r =
    Max.solve ~direction:Dataflow.Forward cfg ~init:0 ~transfer:(fun _ v ->
        v + 1)
  in
  check Alcotest.(option int) "longest path A..F" (Some 6) (Max.final r);
  (* Backward is symmetric: longest path measured from the other end. *)
  let b =
    Max.solve ~direction:Dataflow.Backward cfg ~init:0 ~transfer:(fun _ v ->
        v + 1)
  in
  check Alcotest.(option int) "backward agrees" (Some 6) (Max.final b)

(* Charging Ball-Larus Val(e) on edges: the max path sum reaching EXIT is
   num_paths - 1 and the min is 0 — exactly the encoding's range. *)
let test_edge_transfer () =
  let cfg = Cfg.of_proc (Fixtures.figure1_proc ()) in
  let bl = Ball_larus.build cfg in
  let edge_transfer e v = v + Ball_larus.edge_val bl e in
  let id _ v = v in
  let mx =
    Max.solve ~edge_transfer ~direction:Dataflow.Forward cfg ~init:0
      ~transfer:id
  in
  let mn =
    Min.solve ~edge_transfer ~direction:Dataflow.Forward cfg ~init:0
      ~transfer:id
  in
  check Alcotest.(option int) "max path sum" (Some 5) (Max.final mx);
  check Alcotest.(option int) "min path sum" (Some 0) (Min.final mn)

(* Blocks not reachable from ENTRY stay at bottom (= None). *)
let test_unreachable_bottom () =
  let b =
    Builder.create ~name:"unreach" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
  in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  ignore l0;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.switch_to b l1;
  Builder.terminate b (Block.Jmp l0);
  let cfg = Cfg.of_proc (Builder.finish b) in
  let r =
    Max.solve ~direction:Dataflow.Forward cfg ~init:0 ~transfer:(fun _ v ->
        v + 1)
  in
  check Alcotest.(option int) "entry block reached" (Some 1) (Max.after r l0);
  check Alcotest.(option int) "dead block at bottom" None (Max.before r l1)

(* The worklist reaches a fixpoint in a bounded number of transfer
   applications on cyclic graphs. *)
let test_convergence () =
  List.iter
    (fun seed ->
      let proc = Fixtures.random_cyclic_proc ~seed ~n:24 in
      let cfg = Cfg.of_proc proc in
      let r =
        Max.solve ~direction:Dataflow.Forward cfg
          ~init:0
          ~transfer:(fun _ v -> min (v + 1) 40)
      in
      let nverts = 24 + 1 + 2 in
      (* height of the chain lattice {0..40} times the vertex count is a
         crude worklist bound; far below it in practice *)
      if Max.steps r > 41 * nverts then
        Alcotest.failf "seed %d: %d steps for %d vertices" seed (Max.steps r)
          nverts)
    [ 1; 2; 3; 4; 5 ]

let test_bitset () =
  let s = Bitset.create 70 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 69;
  check int_list "elements" [ 0; 63; 69 ] (Bitset.elements s);
  check Alcotest.bool "mem" true (Bitset.mem s 63);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  let t = Bitset.create 70 in
  Bitset.add t 1;
  Bitset.add t 69;
  check int_list "union" [ 0; 1; 69 ] (Bitset.elements (Bitset.union s t));
  check int_list "inter" [ 69 ] (Bitset.elements (Bitset.inter s t));
  check int_list "diff" [ 0 ] (Bitset.elements (Bitset.diff s t));
  check Alcotest.bool "full/mem" true (Bitset.mem (Bitset.full 70) 69);
  check Alcotest.bool "equal" true
    (Bitset.equal (Bitset.union s t) (Bitset.union t s))

(* r0 is the parameter.
     L0: r1 <- 5;          br r0 ? L1 : L2
     L1: r2 <- r1 + r0;    jmp L3
     L2: r2 <- 0;          jmp L3
     L3: ret r2 *)
let liveness_proc () =
  let b =
    Builder.create ~name:"live" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_int
  in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  ignore l0;
  Builder.emit b (Instr.Iconst (1, 5));
  Builder.terminate b (Block.Br (0, l1, l2));
  Builder.switch_to b l1;
  Builder.emit b (Instr.Ibinop (Instr.Add, 2, 1, 0));
  Builder.terminate b (Block.Jmp l3);
  Builder.switch_to b l2;
  Builder.emit b (Instr.Iconst (2, 0));
  Builder.terminate b (Block.Jmp l3);
  Builder.switch_to b l3;
  Builder.terminate b (Block.Ret (Block.Ret_int 2));
  Builder.finish b

let elements = function
  | None -> Alcotest.fail "unexpectedly unreachable"
  | Some s -> Bitset.elements s

let test_liveness () =
  let lv = Liveness.compute (Cfg.of_proc (liveness_proc ())) in
  check int_list "live into L0" [ 0 ] (elements (Liveness.live_in lv 0));
  check int_list "live out of L0" [ 0; 1 ] (elements (Liveness.live_out lv 0));
  check int_list "live into L1" [ 0; 1 ] (elements (Liveness.live_in lv 1));
  check int_list "live into L2" [] (elements (Liveness.live_in lv 2));
  check int_list "live into L3" [ 2 ] (elements (Liveness.live_in lv 3));
  check Alcotest.string "reg naming" "r1" (Liveness.reg_name lv 1)

let single_block_proc instrs ret =
  let b =
    Builder.create ~name:"one" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_int
  in
  ignore (Builder.new_block b);
  List.iter (Builder.emit b) instrs;
  Builder.terminate b (Block.Ret (Block.Ret_int ret));
  Builder.finish b

let test_dead_stores () =
  let dead r1 r2 =
    let lv = Liveness.compute (Cfg.of_proc (single_block_proc [ r1; r2 ] 1)) in
    Liveness.dead_stores lv
  in
  (* r1 <- 1 is overwritten before any read *)
  (match dead (Instr.Iconst (1, 1)) (Instr.Iconst (1, 2)) with
  | [ d ] ->
      check Alcotest.string "location"
        "warning: one/L0/0: dead store: r1 is never read" (Diag.to_string d)
  | ds -> Alcotest.failf "expected one dead store, got %d" (List.length ds));
  (* the implicit zero-init idiom is not flagged by default... *)
  let lv =
    Liveness.compute
      (Cfg.of_proc
         (single_block_proc [ Instr.Iconst (1, 0); Instr.Iconst (1, 2) ] 1))
  in
  check Alcotest.int "zero-init tolerated" 0
    (List.length (Liveness.dead_stores lv));
  (* ... unless asked for *)
  check Alcotest.int "zero-init flagged on demand" 1
    (List.length (Liveness.dead_stores ~flag_zero_init:true lv));
  (* an instruction with side effects is never a dead store *)
  let lv =
    Liveness.compute
      (Cfg.of_proc
         (single_block_proc
            [ Instr.Load (1, 0, 0); Instr.Iconst (1, 2) ]
            1))
  in
  check Alcotest.int "loads kept" 0 (List.length (Liveness.dead_stores lv))

let test_uninit () =
  (* r2 <- r1 + r0 with only r0 a parameter: r1 may be uninitialised *)
  let proc = single_block_proc [ Instr.Ibinop (Instr.Add, 2, 1, 0) ] 2 in
  let u = Uninit.compute (Cfg.of_proc proc) in
  (match Uninit.maybe_uninit_in u 0 with
  | None -> Alcotest.fail "entry unreachable?"
  | Some s ->
      check Alcotest.bool "param initialised" false (Bitset.mem s 0);
      check Alcotest.bool "r1 uninitialised" true (Bitset.mem s 1));
  (match Uninit.warnings u with
  | [ d ] ->
      check Alcotest.string "warning"
        "warning: one/L0/0: r1 may be used uninitialised" (Diag.to_string d)
  | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws));
  (* a register defined on only one branch arm is still 'maybe' at the join;
     defined on both arms it is initialised *)
  let both_arms =
    let b =
      Builder.create ~name:"join" ~iparams:1 ~fparams:0
        ~returns:Proc.Returns_int
    in
    let l0 = Builder.new_block b in
    let l1 = Builder.new_block b in
    let l2 = Builder.new_block b in
    let l3 = Builder.new_block b in
    ignore l0;
    Builder.terminate b (Block.Br (0, l1, l2));
    Builder.switch_to b l1;
    Builder.emit b (Instr.Iconst (1, 1));
    Builder.terminate b (Block.Jmp l3);
    Builder.switch_to b l2;
    Builder.terminate b (Block.Jmp l3);
    Builder.switch_to b l3;
    Builder.terminate b (Block.Ret (Block.Ret_int 1));
    Builder.finish b
  in
  let u = Uninit.compute (Cfg.of_proc both_arms) in
  check Alcotest.int "one-armed define still flagged" 1
    (List.length (Uninit.warnings u))

let test_reaching_defs () =
  (* L0: r1 <- 0; jmp L1.  L1: br r0 ? L2 : L3.
     L2: r1 <- r1 + r0; jmp L1 (backedge).  L3: ret r1. *)
  let b =
    Builder.create ~name:"reach" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_int
  in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  ignore l0;
  Builder.emit b (Instr.Iconst (1, 0));
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l1;
  Builder.terminate b (Block.Br (0, l2, l3));
  Builder.switch_to b l2;
  Builder.emit b (Instr.Ibinop (Instr.Add, 1, 1, 0));
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l3;
  Builder.terminate b (Block.Ret (Block.Ret_int 1));
  let rd = Reaching_defs.compute (Cfg.of_proc (Builder.finish b)) in
  let defs_of_reg l reg =
    match Reaching_defs.reaching_in rd l with
    | None -> Alcotest.fail "unreachable"
    | Some sites ->
        List.filter (fun (s : Reaching_defs.site) -> s.reg = reg) sites
        |> List.map (fun (s : Reaching_defs.site) -> (s.block, s.index))
        |> List.sort compare
  in
  (* both the init in L0 and the update in L2 reach the loop head and the
     return block; only the init reaches L0's own body *)
  check
    Alcotest.(list (pair int int))
    "r1 defs at head"
    [ (0, 0); (2, 0) ]
    (defs_of_reg l1 1);
  check
    Alcotest.(list (pair int int))
    "r1 defs at return"
    [ (0, 0); (2, 0) ]
    (defs_of_reg l3 1);
  (* the parameter's pseudo-site (index -1) reaches everywhere *)
  check Alcotest.bool "param site" true
    (List.exists (fun (_, i) -> i = -1) (defs_of_reg l3 0))

let test_lint_unused () =
  let main =
    let b =
      Builder.create ~name:"main" ~iparams:0 ~fparams:0
        ~returns:Proc.Returns_void
    in
    ignore (Builder.new_block b);
    Builder.emit_call b ~callee:"used" ~args:[] ~fargs:[] ~ret:Instr.Rnone;
    Builder.terminate b (Block.Ret Block.Ret_void);
    Builder.finish b
  in
  let leaf name =
    let b =
      Builder.create ~name ~iparams:0 ~fparams:0 ~returns:Proc.Returns_void
    in
    ignore (Builder.new_block b);
    Builder.terminate b (Block.Ret Block.Ret_void);
    Builder.finish b
  in
  let prog =
    Program.make
      ~procs:[ main; leaf "used"; leaf "unused" ]
      ~globals:[] ~main:"main"
  in
  match Lint.run prog with
  | [ d ] ->
      check Alcotest.string "diagnostic"
        "warning: unused: unused function: never called from main"
        (Diag.to_string d)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let suite =
  [
    Alcotest.test_case "longest path" `Quick test_longest_path;
    Alcotest.test_case "edge transfer" `Quick test_edge_transfer;
    Alcotest.test_case "unreachable stays bottom" `Quick
      test_unreachable_bottom;
    Alcotest.test_case "convergence" `Quick test_convergence;
    Alcotest.test_case "bitset" `Quick test_bitset;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "dead stores" `Quick test_dead_stores;
    Alcotest.test_case "uninitialised reads" `Quick test_uninit;
    Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
    Alcotest.test_case "unused functions" `Quick test_lint_unused;
  ]
