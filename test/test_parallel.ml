(* The process pool and the parallel run matrix.

   The determinism contract is the point: a matrix run at --jobs N must
   render byte-for-byte as the serial run, because tasks are measured in
   isolated processes on a deterministic simulator and the report is a
   pure function of the outcome list in task order. *)

module Pool = Pp_run.Pool
module Matrix = Pp_run.Matrix



let test_map_order () =
  let outcomes = Pool.map ~jobs:3 (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.check
    Alcotest.(list (option int))
    "results in input order"
    (List.map (fun x -> Some (x * x)) [ 1; 2; 3; 4; 5; 6; 7 ])
    (List.map Pool.outcome_ok outcomes)

let test_crash_isolation () =
  let outcomes =
    Pool.map ~jobs:2
      (fun x -> if x = 2 then failwith "boom" else x)
      [ 1; 2; 3 ]
  in
  match outcomes with
  | [ Pool.Done 1; Pool.Crashed msg; Pool.Done 3 ] ->
      let has_boom =
        let n = String.length msg in
        let rec go i =
          i + 4 <= n && (String.sub msg i 4 = "boom" || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "message names the exception" true has_boom
  | _ ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; " (List.map Pool.describe outcomes))

let test_crash_isolation_in_process () =
  (* jobs <= 1 runs in-process; exceptions must still isolate. *)
  let outcomes =
    Pool.map ~jobs:1 (fun x -> if x = 0 then raise Exit else x) [ 0; 5 ]
  in
  match outcomes with
  | [ Pool.Crashed _; Pool.Done 5 ] -> ()
  | _ ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; " (List.map Pool.describe outcomes))

let test_timeout () =
  let outcomes =
    Pool.map ~jobs:2 ~timeout:0.3
      (fun x ->
        if x = 1 then Unix.sleepf 5.0;
        x)
      [ 0; 1 ]
  in
  match outcomes with
  | [ Pool.Done 0; Pool.Timed_out t ] ->
      Alcotest.(check bool) "killed near the deadline" true (t >= 0.3 && t < 4.0)
  | _ ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; " (List.map Pool.describe outcomes))

let test_empty_and_singleton () =
  Alcotest.(check int) "empty" 0 (List.length (Pool.map ~jobs:4 (fun x -> x) []));
  match Pool.map ~jobs:4 (fun x -> x + 1) [ 41 ] with
  | [ Pool.Done 42 ] -> ()
  | o ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map Pool.describe o))

(* The golden check, on a reduced matrix (the two cheapest workloads,
   every configuration): the parallel report must be byte-identical to
   the serial one. *)
let test_golden_parallel_report () =
  let tasks = Matrix.tasks ~workloads:[ "li_like"; "m88k_like" ] () in
  let serial = Matrix.run ~jobs:1 tasks in
  let parallel = Matrix.run ~jobs:4 tasks in
  Alcotest.(check bool) "no shard failed" true (Matrix.failures parallel = []);
  Alcotest.(check string) "jobs 4 report byte-identical to serial"
    (Matrix.report serial) (Matrix.report parallel)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "crash isolation (forked)" `Quick test_crash_isolation;
    Alcotest.test_case "crash isolation (in-process)" `Quick
      test_crash_isolation_in_process;
    Alcotest.test_case "timeout kills the shard" `Quick test_timeout;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "parallel report is byte-identical" `Slow
      test_golden_parallel_report;
  ]
