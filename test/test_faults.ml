(* The fault-tolerance stack, bottom to top: the CRC line codec, the
   checksummed shard format and its salvage reader (with a QCheck oracle
   over arbitrary truncation and bit-flip points), atomic writes and
   injectable write faults, the pool's retry/backoff/quarantine layer,
   checkpoint resumption, and the end-to-end chaos invariant: a seeded
   fault plan with a retry budget must recover a merged profile
   byte-identical to the fault-free run. *)

module Crc32 = Pp_core.Crc32
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Event = Pp_machine.Event
module Pool = Pp_run.Pool
module Faults = Pp_run.Faults
module Chaos = Pp_run.Chaos
module Checkpoint = Pp_run.Checkpoint
module Interp = Pp_vm.Interp
module Diag = Pp_ir.Diag

(* {2 CRC-32} *)

let test_crc_vector () =
  (* The IEEE 802.3 / zlib check value. *)
  Alcotest.(check int) "crc32(123456789)" 0xcbf43926 (Crc32.digest "123456789");
  Alcotest.(check int) "crc32 of empty" 0 (Crc32.digest "")

let test_crc_tag_untag () =
  let line = "path 3 14 15 926" in
  Alcotest.(check (option string)) "roundtrip" (Some line)
    (Crc32.untag (Crc32.tag line));
  Alcotest.(check (option string)) "no token" None (Crc32.untag line);
  Alcotest.(check (option string)) "empty" None (Crc32.untag "")

let test_crc_detects_single_bit_flips () =
  (* CRC-32 detects every single-bit error; untag must reject all of
     them, whether the flip lands in the content or the token. *)
  let tagged = Bytes.of_string (Crc32.tag "proc alpha 8") in
  for bit = 0 to (8 * Bytes.length tagged) - 1 do
    let b = Bytes.copy tagged in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    match Crc32.untag (Bytes.to_string b) with
    | None -> ()
    | Some _ -> Alcotest.failf "flip of bit %d went undetected" bit
  done

(* {2 A synthetic saved profile, big enough to damage interestingly} *)

let pm freq m0 m1 = { Profile.freq; m0; m1 }

let saved () =
  Profile_io.canonical
    {
      Profile_io.program_hash = "cafe0123beef";
      mode = "flow+hw";
      pic0 = Event.Dcache_misses;
      pic1 = Event.Instructions;
      procs =
        [
          ("alpha", 8, [ (0, pm 3 5 7); (2, pm 10 0 4); (5, pm 1 1 1) ]);
          ("beta", 16, [ (1, pm 7 2 9); (9, pm 4 4 4); (15, pm 2 0 1) ]);
          ("gamma", 4, [ (3, pm 11 6 2) ]);
        ];
      feasible = [ ("alpha", 6); ("beta", 12) ];
      coverage = [ ("beta", (13, 40)) ];
    }

let records_of (s : Profile_io.saved) =
  List.length s.Profile_io.feasible
  + List.length s.Profile_io.coverage
  + List.fold_left
      (fun acc (_, _, paths) -> acc + 1 + List.length paths)
      0 s.Profile_io.procs

(* {2 Format v2: roundtrip, v1 compatibility, strictness} *)

let test_v2_roundtrip () =
  let s = saved () in
  Alcotest.(check bool) "roundtrip" true
    (Profile_io.of_string (Profile_io.to_string s) = s);
  match Profile_io.salvage_string (Profile_io.to_string s) with
  | Ok (s', None) ->
      Alcotest.(check bool) "salvage of intact = identity" true (s' = s)
  | Ok (_, Some _) -> Alcotest.fail "intact shard reported damage"
  | Error d -> Alcotest.failf "unexpected: %s" (Diag.to_string d)

let test_v1_still_readable () =
  let text =
    "profile 1 cafe0123beef flow+hw dc_miss insts\n\
     proc alpha 8\n\
     path 0 3 5 7\n"
  in
  let s = Profile_io.of_string text in
  Alcotest.(check bool) "totals" true (Profile_io.totals s = (3, 5, 7));
  (* A v1 file is not checksummed: nothing to salvage. *)
  match Profile_io.salvage_string ("nonsense " ^ text) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "salvage accepted an unparseable v1 file"

let test_strict_reader_rejects_damage () =
  let text = Profile_io.to_string (saved ()) in
  let damaged = String.sub text 0 (String.length text - 10) in
  match Profile_io.of_string damaged with
  | exception Profile_io.Parse_error (_, msg) ->
      Alcotest.(check bool) "message counts intact records" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "strict reader accepted a truncated shard"

(* {2 Salvage oracle: line layout of the serialized text} *)

(* [line_ends text] = the offset just past each line's content (i.e. of
   its newline).  A damaged byte at offset [o] belongs to the first line
   with [o <= end_i]. *)
let line_ends text =
  let lines = String.split_on_char '\n' text in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let ends = ref [] in
  let pos = ref 0 in
  List.iter
    (fun l ->
      ends := (!pos + String.length l) :: !ends;
      pos := !pos + String.length l + 1)
    lines;
  List.rev !ends

let check_salvage ~expect_recovered ~total result =
  match (result : _ result) with
  | Error d ->
      if expect_recovered >= 0 then
        Alcotest.failf "salvage failed: %s" (Diag.to_string d)
  | Ok (_, rep) ->
      if expect_recovered < 0 then
        Alcotest.fail "salvage succeeded on an unrecoverable header"
      else if expect_recovered = total then
        Alcotest.(check bool) "no damage reported" true (rep = None)
      else begin
        match rep with
        | None -> Alcotest.fail "damage went unreported"
        | Some r ->
            Alcotest.(check int) "total" total r.Profile_io.total;
            Alcotest.(check int) "recovered" expect_recovered
              r.Profile_io.recovered;
            Alcotest.(check int) "first bad line"
              (expect_recovered + 2)
              r.Profile_io.first_bad_line
      end

let prop_salvage_truncation =
  let s = saved () in
  let text = Profile_io.to_string s in
  let total = records_of s in
  let ends = line_ends text in
  QCheck.Test.make ~count:300
    ~name:"salvage recovers exactly the records before a truncation"
    QCheck.(int_bound (String.length text - 1))
    (fun t ->
      let damaged = String.sub text 0 t in
      let intact = List.filter (fun e -> e <= t) ends in
      let expect =
        if intact = [] then -1 (* header gone: unrecoverable *)
        else List.length intact - 1
      in
      check_salvage ~expect_recovered:expect ~total
        (Profile_io.salvage_string damaged);
      true)

let prop_salvage_bit_flip =
  let s = saved () in
  let text = Profile_io.to_string s in
  let total = records_of s in
  let ends = line_ends text in
  QCheck.Test.make ~count:300
    ~name:"a bit flip loses exactly the records from its line on"
    QCheck.(int_bound ((8 * String.length text) - 1))
    (fun bit ->
      let o = bit / 8 in
      let b = Bytes.of_string text in
      Bytes.set b o
        (Char.chr (Char.code (Bytes.get b o) lxor (1 lsl (bit mod 8))));
      let damaged = Bytes.to_string b in
      (* index of the first line whose content-or-terminator contains
         the flipped byte *)
      let line =
        let rec go i = function
          | [] -> i
          | e :: rest -> if o <= e then i else go (i + 1) rest
        in
        go 0 ends
      in
      let expect = if line = 0 then -1 else line - 1 in
      check_salvage ~expect_recovered:expect ~total
        (Profile_io.salvage_string damaged);
      true)

let test_salvage_golden () =
  let s = saved () in
  let text = Profile_io.to_string s in
  let total = records_of s in
  let ends = line_ends text in
  (* Cut mid-way through the fourth line: header + 2 records survive. *)
  let cut = List.nth ends 3 - 2 in
  (match Profile_io.salvage_string (String.sub text 0 cut) with
  | Ok (s', Some rep) ->
      Alcotest.(check int) "recovered" 2 rep.Profile_io.recovered;
      Alcotest.(check int) "total" total rep.Profile_io.total;
      Alcotest.(check int) "first bad line" 4 rep.Profile_io.first_bad_line;
      Alcotest.(check int) "prefix procs + feasible" 2
        (List.length s'.Profile_io.feasible)
  | Ok (_, None) -> Alcotest.fail "damage went unreported"
  | Error d -> Alcotest.failf "unexpected: %s" (Diag.to_string d));
  (* The diag renders at the "<shard>" pseudo-procedure. *)
  match Profile_io.salvage_string (String.sub text 0 cut) with
  | Ok (_, Some rep) ->
      let d = Profile_io.salvage_diag ~file:"x.pprof" rep in
      Alcotest.(check string) "diag loc" "<shard>" d.Diag.loc.Diag.proc
  | _ -> Alcotest.fail "expected a report"

(* {2 Atomic writes and injected write faults} *)

let with_tmp f =
  let path = Filename.temp_file "pp_faults" ".pprof" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let test_die_mid_write_is_atomic () =
  with_tmp (fun path ->
      let s = saved () in
      Profile_io.to_file path s;
      let bigger =
        match Profile_io.merge s s with Ok m -> m | Error _ -> assert false
      in
      (match Profile_io.to_file ~fault:Profile_io.Die_mid_write path bigger with
      | exception Profile_io.Killed_mid_write -> ()
      | () -> Alcotest.fail "Die_mid_write did not kill the writer");
      (* The destination still holds the previous complete version. *)
      Alcotest.(check bool) "destination untouched" true
        (Profile_io.of_file path = s);
      Alcotest.(check bool) "partial temp left behind" true
        (Sys.file_exists (path ^ ".tmp")))

let test_torn_write_salvages () =
  with_tmp (fun path ->
      let s = saved () in
      (match Profile_io.to_file ~fault:Profile_io.Torn_write path s with
      | exception Profile_io.Killed_mid_write -> ()
      | () -> Alcotest.fail "Torn_write did not kill the writer");
      (* The destination is torn — exactly what atomic writes prevent;
         the strict reader refuses it and salvage recovers a prefix. *)
      (match Profile_io.of_file path with
      | exception Profile_io.Parse_error _ -> ()
      | _ -> Alcotest.fail "strict reader accepted a torn file");
      match Profile_io.salvage_file path with
      | Ok (_, Some rep) ->
          Alcotest.(check bool) "a strict prefix" true
            (rep.Profile_io.recovered < rep.Profile_io.total)
      | Ok (_, None) -> Alcotest.fail "torn file reported intact"
      | Error d -> Alcotest.failf "unsalvageable: %s" (Diag.to_string d))

let test_flip_and_truncate_faults () =
  with_tmp (fun path ->
      let s = saved () in
      Profile_io.to_file ~fault:(Profile_io.Flip_bit 2000) path s;
      (match Profile_io.of_file path with
      | exception Profile_io.Parse_error _ -> ()
      | _ -> Alcotest.fail "strict reader accepted a flipped file");
      Profile_io.to_file ~fault:(Profile_io.Truncate_at 120) path s;
      match Profile_io.of_file path with
      | exception Profile_io.Parse_error _ -> ()
      | _ -> Alcotest.fail "strict reader accepted a truncated file")

(* {2 Fault plans} *)

let test_plan_determinism () =
  let p1 = Faults.seeded Faults.Mixed ~seed:42 ~tasks:10 in
  let p2 = Faults.seeded Faults.Mixed ~seed:42 ~tasks:10 in
  Alcotest.(check string) "same summary" (Faults.summary p1)
    (Faults.summary p2);
  Alcotest.(check (list string)) "same plan" (Faults.describe_plan p1)
    (Faults.describe_plan p2);
  for task = 0 to 9 do
    Alcotest.(check bool) "same draw" true
      (Faults.fault_for p1 ~task ~attempt:1
      = Faults.fault_for p2 ~task ~attempt:1)
  done;
  let p3 = Faults.seeded Faults.Mixed ~seed:43 ~tasks:10 in
  Alcotest.(check bool) "different seed, different plan" false
    (Faults.describe_plan p1 = Faults.describe_plan p3)

let test_plan_respects_max_attempt () =
  let p = Faults.seeded Faults.Crash_heavy ~seed:7 ~tasks:12 in
  Alcotest.(check bool) "faults something" true (Faults.count p > 0);
  for task = 0 to 11 do
    (* Attempts past the budget run clean: retries must converge. *)
    Alcotest.(check bool) "attempt 2 clean" true
      (Faults.fault_for p ~task ~attempt:2 = None)
  done;
  Alcotest.(check bool) "out of range" true
    (Faults.fault_for p ~task:99 ~attempt:1 = None);
  Alcotest.(check bool) "none plan" true
    (Faults.fault_for Faults.none ~task:0 ~attempt:1 = None)

let test_plan_kinds () =
  let crashy =
    function
    | Faults.Crash | Faults.Stall _ | Faults.Die_mid_write -> true
    | _ -> false
  in
  let p = Faults.seeded Faults.Crash_heavy ~seed:3 ~tasks:20 in
  for task = 0 to 19 do
    match Faults.fault_for p ~task ~attempt:1 with
    | None -> ()
    | Some f ->
        Alcotest.(check bool) "crash-heavy draws process faults" true
          (crashy f)
  done;
  let p = Faults.seeded Faults.Corruption_heavy ~seed:3 ~tasks:20 in
  for task = 0 to 19 do
    match Faults.fault_for p ~task ~attempt:1 with
    | None -> ()
    | Some f ->
        Alcotest.(check bool) "corruption-heavy draws data faults" true
          (not (crashy f));
        Alcotest.(check bool) "data faults map to write faults" true
          (Faults.write_fault f <> None)
  done;
  Alcotest.(check (option string)) "kind name roundtrip"
    (Some "crash-heavy")
    (Option.map Faults.kind_name (Faults.kind_of_name "crash-heavy"))

(* {2 Pool retry / backoff / quarantine} *)

let test_retry_converges () =
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let f ~attempt x = if attempt = 1 && x mod 2 = 0 then failwith "boom" else x * 10 in
  let outcomes, stats =
    Pool.map_retry ~jobs:1 ~retries:3 ~sleep f [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int)) "all converge" [ 0; 10; 20; 30; 40; 50 ]
    (List.filter_map Pool.outcome_ok outcomes);
  Alcotest.(check int) "retried" 3 stats.Pool.retried;
  Alcotest.(check int) "quarantined" 0 stats.Pool.quarantined;
  Alcotest.(check int) "attempts" 9 stats.Pool.attempts;
  Alcotest.(check int) "one backoff round" 1 (List.length !sleeps);
  let b = Pool.default_backoff in
  List.iter
    (fun d ->
      Alcotest.(check bool) "delay within jitter bounds" true
        (d >= b.Pool.base *. (1.0 -. b.Pool.jitter)
        && d <= b.Pool.base *. (1.0 +. b.Pool.jitter)))
    !sleeps

let test_retry_deterministic_schedule () =
  let run () =
    let sleeps = ref [] in
    let f ~attempt x = if attempt < 3 then failwith "flaky" else x in
    let _ =
      Pool.map_retry ~jobs:1 ~retries:4
        ~sleep:(fun d -> sleeps := d :: !sleeps)
        f [ 1; 2; 3 ]
    in
    List.rev !sleeps
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two rounds of backoff" true (List.length a = 2);
  Alcotest.(check bool) "identical schedules" true (a = b);
  (* Exponential: the round-2 delay exceeds round 1 even at extreme
     jitter draws (factor 2, jitter 0.5). *)
  match a with
  | [ d1; d2 ] ->
      Alcotest.(check bool) "backoff grows" true (d2 > d1 /. 3.0)
  | _ -> Alcotest.fail "expected two delays"

let test_retry_quarantine () =
  let outcomes, stats =
    Pool.map_retry ~jobs:1 ~retries:3
      ~sleep:(fun _ -> ())
      (fun ~attempt:_ x -> if x = 1 then failwith "always" else x)
      [ 0; 1; 2 ]
  in
  (match List.nth outcomes 1 with
  | Pool.Crashed _ -> ()
  | _ -> Alcotest.fail "expected the poisoned task to stay failed");
  Alcotest.(check int) "quarantined" 1 stats.Pool.quarantined;
  Alcotest.(check int) "ok" 2 stats.Pool.ok;
  Alcotest.(check int) "attempts: 1 + 3 + 1" 5 stats.Pool.attempts;
  let t1 = List.nth stats.Pool.task_stats 1 in
  Alcotest.(check int) "budget exhausted" 3 t1.Pool.attempts;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "footer mentions quarantine" true
    (contains (Pool.footer stats) "quarantined")

let test_parent_verify_demotes_and_retries () =
  let rejected = Hashtbl.create 4 in
  let verify x v =
    if v <> x * 2 then Error "wrong answer"
    else if x = 2 && not (Hashtbl.mem rejected x) then begin
      (* Simulate damage the worker can't see: reject the first good
         result; the retry must then be accepted. *)
      Hashtbl.add rejected x ();
      Error "corrupt on disk"
    end
    else Ok ()
  in
  let outcomes, stats =
    Pool.map_retry ~jobs:1 ~retries:3
      ~sleep:(fun _ -> ())
      ~verify
      (fun ~attempt:_ x -> x * 2)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "all accepted" [ 2; 4; 6 ]
    (List.filter_map Pool.outcome_ok outcomes);
  Alcotest.(check int) "the rejected task retried" 1 stats.Pool.retried;
  Alcotest.(check int) "attempts" 4 stats.Pool.attempts

let test_map_stats_single_attempt_compat () =
  let outcomes, stats =
    Pool.map_stats ~jobs:1 (fun x -> x + 1) [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ]
    (List.filter_map Pool.outcome_ok outcomes);
  Alcotest.(check int) "attempts = tasks" 3 stats.Pool.attempts;
  Alcotest.(check int) "no retries" 0 stats.Pool.retried;
  List.iter
    (fun (t : Pool.task_stat) ->
      Alcotest.(check int) "one attempt" 1 t.Pool.attempts)
    stats.Pool.task_stats

(* {2 Checkpoints} *)

let ckpt_result () =
  {
    Interp.instructions = 123456;
    cycles = 654321;
    output = [ Interp.Oint 42; Interp.Ofloat (0.1 +. 0.2); Interp.Oint (-7) ];
    counters = [ (Event.Cycles, 654321); (Event.Dcache_misses, 99) ];
  }

let with_ckpt_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pp_ckpt_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_checkpoint_roundtrip () =
  with_ckpt_dir (fun dir ->
      let r = ckpt_result () in
      Checkpoint.save ~dir ~key:"k1" 3 r;
      (* Floats round-trip exactly (hex notation), so a resumed run
         reprints byte-identical output. *)
      Alcotest.(check bool) "roundtrip" true
        (Checkpoint.load ~dir ~key:"k1" 3 = Some r);
      Alcotest.(check bool) "absent shard" true
        (Checkpoint.load ~dir ~key:"k1" 4 = None);
      Alcotest.(check bool) "different key rejected" true
        (Checkpoint.load ~dir ~key:"k2" 3 = None))

let test_checkpoint_rejects_damage () =
  with_ckpt_dir (fun dir ->
      let r = ckpt_result () in
      Checkpoint.save ~dir ~key:"k1" 0 r;
      let path = Checkpoint.path ~dir 0 in
      let text =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      (* Any single corrupt byte must void the checkpoint, never load
         wrong data. *)
      for o = 0 to String.length text - 1 do
        let b = Bytes.of_string text in
        Bytes.set b o (Char.chr (Char.code (Bytes.get b o) lxor 0x10));
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc;
        match Checkpoint.load ~dir ~key:"k1" 0 with
        | None -> ()
        | Some r' ->
            if r' <> r then
              Alcotest.failf "corrupt byte %d loaded as wrong data" o
            (* (a flip may cancel out only by restoring the byte — it
               cannot here, xor 0x10 never fixes itself) *)
      done)

(* {2 Chaos: the end-to-end invariant} *)

let chaos_src =
  {|
int acc;
int step(int x) {
  if (x % 3 == 0) { return x * 2; }
  return x + 1;
}
void main() {
  int i;
  for (i = 0; i < 12; i = i + 1) { acc = acc + step(i); }
  print(acc);
}
|}

let chaos_program = lazy (Pp_minic.Compile.program ~name:"chaos_fixture" chaos_src)

let with_chaos_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pp_chaos_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let run_chaos ~dir ~retries ~seed ~kind =
  let shards = 4 in
  let plan = Faults.seeded ~stall:0.0 kind ~seed ~tasks:shards in
  Alcotest.(check bool) "plan faults something" true (Faults.count plan > 0);
  match
    Chaos.run ~dir ~budget:2_000_000 ~jobs:1 ~retries
      ~sleep:(fun _ -> ())
      ~plan ~shards (Lazy.force chaos_program)
  with
  | Error d -> Alcotest.failf "chaos setup failed: %s" (Diag.to_string d)
  | Ok r -> r

let test_chaos_converges_with_retries () =
  with_chaos_dir (fun dir ->
      let r = run_chaos ~dir ~retries:3 ~seed:11 ~kind:Faults.Corruption_heavy in
      Alcotest.(check bool) "not degraded" false (Chaos.degraded r);
      Alcotest.(check bool) "byte-identical recovery" true r.Chaos.identical;
      Alcotest.(check int) "nothing quarantined" 0
        r.Chaos.stats.Pool.quarantined;
      Alcotest.(check bool) "faults really fired (retries happened)" true
        (r.Chaos.stats.Pool.retried > 0);
      Alcotest.(check string) "coverage line" "coverage: 4/4 shards"
        (Chaos.coverage r))

let test_chaos_mixed_converges () =
  with_chaos_dir (fun dir ->
      let r = run_chaos ~dir ~retries:3 ~seed:5 ~kind:Faults.Mixed in
      Alcotest.(check bool) "byte-identical recovery" true r.Chaos.identical;
      Alcotest.(check bool) "not degraded" false (Chaos.degraded r))

let test_chaos_degrades_without_retries () =
  with_chaos_dir (fun dir ->
      let r =
        run_chaos ~dir ~retries:1 ~seed:11 ~kind:Faults.Corruption_heavy
      in
      Alcotest.(check bool) "degraded" true (Chaos.degraded r);
      Alcotest.(check bool) "recovery incomplete" false r.Chaos.identical;
      Alcotest.(check bool) "coverage says degraded" true
        (let c = Chaos.coverage r in
         String.length c >= 10
         && String.sub c (String.length c - 10) 10 = "(degraded)"))

let suite =
  [
    Alcotest.test_case "crc: check vector" `Quick test_crc_vector;
    Alcotest.test_case "crc: tag/untag" `Quick test_crc_tag_untag;
    Alcotest.test_case "crc: detects all single-bit flips" `Quick
      test_crc_detects_single_bit_flips;
    Alcotest.test_case "v2: roundtrip" `Quick test_v2_roundtrip;
    Alcotest.test_case "v1: still readable" `Quick test_v1_still_readable;
    Alcotest.test_case "v2: strict reader rejects damage" `Quick
      test_strict_reader_rejects_damage;
    QCheck_alcotest.to_alcotest prop_salvage_truncation;
    QCheck_alcotest.to_alcotest prop_salvage_bit_flip;
    Alcotest.test_case "salvage: golden prefix" `Quick test_salvage_golden;
    Alcotest.test_case "write: die mid-write is atomic" `Quick
      test_die_mid_write_is_atomic;
    Alcotest.test_case "write: torn write salvages" `Quick
      test_torn_write_salvages;
    Alcotest.test_case "write: flip and truncate faults" `Quick
      test_flip_and_truncate_faults;
    Alcotest.test_case "plan: deterministic" `Quick test_plan_determinism;
    Alcotest.test_case "plan: respects max attempt" `Quick
      test_plan_respects_max_attempt;
    Alcotest.test_case "plan: kind mixes" `Quick test_plan_kinds;
    Alcotest.test_case "retry: converges" `Quick test_retry_converges;
    Alcotest.test_case "retry: deterministic schedule" `Quick
      test_retry_deterministic_schedule;
    Alcotest.test_case "retry: quarantine" `Quick test_retry_quarantine;
    Alcotest.test_case "retry: parent verify demotes" `Quick
      test_parent_verify_demotes_and_retries;
    Alcotest.test_case "retry: map_stats compat" `Quick
      test_map_stats_single_attempt_compat;
    Alcotest.test_case "checkpoint: roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint: rejects damage" `Quick
      test_checkpoint_rejects_damage;
    Alcotest.test_case "chaos: converges with retries" `Quick
      test_chaos_converges_with_retries;
    Alcotest.test_case "chaos: mixed kind converges" `Quick
      test_chaos_mixed_converges;
    Alcotest.test_case "chaos: degrades without retries" `Quick
      test_chaos_degrades_without_retries;
  ]
