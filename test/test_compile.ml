(* Differential certification of the closure-threaded compiled tier.

   The compiled engine ([Pp_vm.Engine.Compiled], the default) must be
   bit-exact with the reference interpreter: same counters, cycles,
   output, profiles, hook observations and traps — including traps that
   land mid-way through a batched block, where the compiled tier replays
   the block's machine events precisely.  Every check below runs the same
   program under both tiers and compares a rendered observation string,
   so a divergence fails with both sides visible. *)

module Engine = Pp_vm.Engine
module Interp = Pp_vm.Interp
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Profile_io = Pp_core.Profile_io
module Cct = Pp_core.Cct
module Event = Pp_machine.Event
module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Trace = Pp_telemetry.Trace

let all_modes =
  [
    Instrument.Edge_freq;
    Instrument.Flow_freq;
    Instrument.Flow_hw;
    Instrument.Context_hw;
    Instrument.Context_flow;
  ]

type config = Base | Mode of Instrument.mode

let all_configs = Base :: List.map (fun m -> Mode m) all_modes

let config_name = function
  | Base -> "base"
  | Mode m -> Instrument.mode_name m

(* {2 Observations}

   Everything externally visible about a run, rendered to one string:
   outcome (completed or the exact trap message), the full counter set,
   cycles, instructions, emitted output, and — for modes that collect
   one — the serialized profile, edge counts or CCT size.  On a trap the
   counter/output snapshot at the trap point is still compared, which is
   exactly where an imprecise batched tier would diverge. *)

let render_output = function
  | Interp.Oint n -> string_of_int n
  | Interp.Ofloat f -> Printf.sprintf "%h" f

let render_result (r : Interp.result) =
  let counters =
    List.map
      (fun (e, n) -> Printf.sprintf "%s=%d" (Event.name e) n)
      r.Interp.counters
  in
  Printf.sprintf "insts=%d cycles=%d [%s] out=[%s]" r.Interp.instructions
    r.Interp.cycles
    (String.concat " " counters)
    (String.concat ";" (List.map render_output r.Interp.output))

let render_edges session =
  String.concat "\n"
    (List.map
       (fun (proc, _, edges) ->
         Printf.sprintf "%s: %s" proc
           (String.concat ","
              (List.map (fun (_, c) -> string_of_int c) edges)))
       (Driver.edge_profile session))

let render_mode_artifacts mode session prog =
  match mode with
  | Instrument.Flow_freq | Instrument.Flow_hw | Instrument.Context_flow ->
      let saved =
        Profile_io.of_profile
          ~program_hash:(Profile_io.program_hash prog)
          ~mode:(Instrument.mode_name mode)
          (Driver.path_profile session)
      in
      let cct =
        match mode with
        | Instrument.Context_flow ->
            Printf.sprintf "\ncct-nodes=%d"
              (Cct.num_nodes (Driver.cct session))
        | _ -> ""
      in
      Profile_io.to_string saved ^ cct
  | Instrument.Edge_freq -> render_edges session
  | Instrument.Context_hw ->
      Printf.sprintf "cct-nodes=%d" (Cct.num_nodes (Driver.cct session))

let observe ~budget ~kind ~config prog =
  match config with
  | Base -> (
      let eng = Engine.create ~kind ~max_instructions:budget prog in
      match Engine.run eng with
      | r -> "done " ^ render_result r
      | exception Interp.Trap msg ->
          Printf.sprintf "trap %S %s" msg
            (render_result (Interp.collect_result (Engine.vm eng))))
  | Mode mode -> (
      let s = Driver.prepare ~max_instructions:budget ~engine:kind ~mode prog in
      match Driver.run s with
      | r ->
          Printf.sprintf "done %s\n%s" (render_result r)
            (render_mode_artifacts mode s prog)
      | exception Interp.Trap msg ->
          Printf.sprintf "trap %S %s" msg
            (render_result (Interp.collect_result s.Driver.vm)))

let check_engines ?(budget = 400_000_000) ~what ~configs prog =
  List.iter
    (fun config ->
      let reference = observe ~budget ~kind:Engine.Interpreted ~config prog in
      let compiled = observe ~budget ~kind:Engine.Compiled ~config prog in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s" what (config_name config))
        reference compiled)
    configs

(* {2 The workload grid}

   All 18 SPEC-shaped workloads under base plus every instrumentation
   mode.  The budget is deliberately small enough that every run traps
   on instruction-budget exhaustion part-way through real work: the
   comparison then covers the trap message {e and} the counter/output
   snapshot at the trap point — the hard case for batched compilation. *)

let workload_budget = 1_000_000

let check_workload name () =
  let w =
    match Registry.find name with
    | Some w -> w
    | None -> Alcotest.failf "unknown workload %s" name
  in
  check_engines ~budget:workload_budget ~what:name ~configs:all_configs
    (W.compile w)

(* {2 The example programs}

   Every MiniC program shipped under [examples/programs/], run to
   completion (except [contexts.mc], large enough that a budget trap is
   the more interesting comparison), with full profile comparison. *)

let examples_dir =
  (* Tests run from [_build/default/test]; walk up to the source tree. *)
  let rec find dir depth =
    let candidate = Filename.concat dir "examples/programs" in
    if Sys.file_exists candidate && Sys.is_directory candidate then
      Some candidate
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  find (Sys.getcwd ()) 6

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_example file () =
  match examples_dir with
  | None -> Alcotest.fail "examples/programs not found above cwd"
  | Some dir ->
      let src = read_file (Filename.concat dir file) in
      let prog = Pp_minic.Compile.program ~name:file src in
      let budget =
        if file = "contexts.mc" then 2_000_000 else 50_000_000
      in
      check_engines ~budget ~what:file ~configs:all_configs prog

let examples =
  [
    "contexts.mc";
    "feasible_demo.mc";
    "hash_probe.mc";
    "lint_demo.mc";
    "lint_params.mc";
    "stencil.mc";
  ]

(* {2 Trap parity}

   Runtime faults must surface with the identical message and identical
   machine state under both tiers.  Division by zero and unaligned /
   out-of-segment accesses abort a batched block part-way through, so
   they exercise the compiled tier's replay path directly. *)

let compile_mc name src = Pp_minic.Compile.program ~name src

let trap_programs =
  [
    ( "div-by-zero",
      "int g;\n\
       void main() { int i; i = 0; while (i < 5) { g = g + i; i = i + 1; }\n\
      \  print(g / (i - 5)); }\n" );
    ( "rem-by-zero",
      "int g;\n\
       void main() { int z; z = 0; g = 7; print(g % z); }\n" );
    ( "oob-store",
      "int arr[4];\n\
       void main() { int i; i = 0;\n\
      \  while (i < 100000) { arr[i] = i; i = i + 1; } print(arr[0]); }\n" );
    ( "oob-load",
      "int arr[4];\n\
       void main() { int i; int s; i = 0; s = 0;\n\
      \  while (i < 100000) { s = s + arr[i]; i = i + 3; } print(s); }\n" );
    ( "stack-overflow",
      "int f(int n) { return f(n + 1); }\n\
       void main() { print(f(0)); }\n" );
  ]

let check_trap (name, src) () =
  check_engines ~budget:10_000_000 ~what:name ~configs:all_configs
    (compile_mc name src)

(* Budget exhaustion at {e every} boundary: sweep the budget over a small
   program so the limit lands on every block of the run at least once,
   including inside what the compiled tier batches.  Both tiers must
   trap at the same instruction with the same snapshot. *)

let budget_sweep_src =
  "int arr[8];\n\
   int f(int a, int b) { if (a < b) { return a * b; } return a - b; }\n\
   void main() { int i; i = 0;\n\
  \  while (i < 6) { arr[i] = f(i, 3); i = i + 1; }\n\
  \  print(arr[0] + arr[5]); }\n"

let test_budget_sweep () =
  let prog = compile_mc "budget-sweep" budget_sweep_src in
  for budget = 1 to 160 do
    List.iter
      (fun config ->
        let reference =
          observe ~budget ~kind:Engine.Interpreted ~config prog
        in
        let compiled = observe ~budget ~kind:Engine.Compiled ~config prog in
        Alcotest.(check string)
          (Printf.sprintf "budget=%d/%s" budget (config_name config))
          reference compiled)
      [ Base; Mode Instrument.Flow_hw ]
  done

(* {2 Hook parity}

   The VM's observation hooks — telemetry counter sampling, statistical
   call-stack sampling, the block-entry probe and the recent-block ring —
   must see the same interleaved history under both tiers.  A batched
   block that skipped or reordered machine events would fire telemetry
   at different simulated cycles, or show the probe stale registers. *)

let hook_src =
  "int arr[16];\n\
   int mix(int a, int b) { return (a * 31 + b) % 1000003; }\n\
   void main() { int i; int acc; i = 0; acc = 1;\n\
  \  while (i < 400) { acc = mix(acc, i); arr[i % 16] = acc; i = i + 1; }\n\
  \  print(acc); }\n"

let test_telemetry_parity () =
  let prog = compile_mc "hooks" hook_src in
  let telemetry kind =
    (* A constant fake clock makes timestamps deterministic, so the full
       event list — including counter values at each simulated-cycle
       firing — is comparable as text. *)
    let trace = Trace.create ~clock:(fun () -> 0.) () in
    let s =
      Driver.prepare ~max_instructions:10_000_000 ~telemetry:trace
        ~telemetry_interval:100 ~engine:kind ~mode:Instrument.Flow_hw prog
    in
    ignore (Driver.run s);
    Trace.to_text trace
  in
  let reference = telemetry Engine.Interpreted in
  let compiled = telemetry Engine.Compiled in
  Alcotest.(check bool) "telemetry fired" true
    (String.length reference > 0);
  Alcotest.(check string) "telemetry events" reference compiled

let test_sampling_parity () =
  let prog = compile_mc "hooks" hook_src in
  let samples kind =
    let vm = Interp.create ~max_instructions:10_000_000 prog in
    Interp.enable_sampling vm ~interval:97;
    ignore (Engine.run (Engine.of_vm ~kind vm));
    List.sort compare (Interp.samples vm)
  in
  let reference = samples Engine.Interpreted in
  Alcotest.(check bool) "samples taken" true (reference <> []);
  Alcotest.(check bool) "sampling parity" true
    (samples Engine.Compiled = reference)

let test_block_probe_parity () =
  let prog = compile_mc "hooks" hook_src in
  let entries kind =
    let vm = Interp.create ~max_instructions:10_000_000 prog in
    let buf = Buffer.create 4096 in
    Interp.set_block_probe vm (fun ~proc ~label ~frame ~iregs ->
        Buffer.add_string buf
          (Printf.sprintf "%s:%d fp=%d [%s]\n" proc label frame
             (String.concat ","
                (Array.to_list (Array.map string_of_int iregs)))));
    ignore (Engine.run (Engine.of_vm ~kind vm));
    Buffer.contents buf
  in
  let reference = entries Engine.Interpreted in
  Alcotest.(check bool) "probe fired" true (String.length reference > 0);
  Alcotest.(check bool) "block probe parity" true
    (entries Engine.Compiled = reference)

let test_block_trace_parity () =
  let prog = compile_mc "hooks" hook_src in
  let recent kind =
    let vm = Interp.create ~max_instructions:10_000_000 prog in
    Interp.enable_block_trace vm ~capacity:64;
    ignore (Engine.run (Engine.of_vm ~kind vm));
    Interp.recent_blocks vm
  in
  let reference = recent Engine.Interpreted in
  Alcotest.(check bool) "trace recorded" true (reference <> []);
  Alcotest.(check bool) "block trace parity" true
    (recent Engine.Compiled = reference)

(* {2 Engine API} *)

let test_engine_api () =
  Alcotest.(check string) "default tier" "compiled"
    (Engine.kind_name Engine.default);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Engine.kind_name k))
        true
        (Engine.kind_of_string (Engine.kind_name k) = Some k))
    Engine.kinds;
  Alcotest.(check bool) "unknown tier rejected" true
    (Engine.kind_of_string "turbo" = None);
  let prog = compile_mc "api" hook_src in
  let eng = Engine.create ~kind:Engine.Compiled prog in
  Alcotest.(check bool) "kind observable" true
    (Engine.kind eng = Engine.Compiled);
  (* Re-running the same engine value reuses the compiled code and stays
     consistent with a fresh interpreter. *)
  let r1 = Engine.run (Engine.create ~kind:Engine.Compiled prog) in
  let r2 = Engine.run (Engine.create ~kind:Engine.Interpreted prog) in
  Alcotest.(check string) "create/run parity" (render_result r2)
    (render_result r1)

let suite =
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "workload %s: engines agree (all modes)" name)
        `Slow (check_workload name))
    (Registry.names ())
  @ List.map
      (fun file ->
        Alcotest.test_case
          (Printf.sprintf "example %s: engines agree (all modes)" file)
          `Slow (check_example file))
      examples
  @ List.map
      (fun ((name, _) as tp) ->
        Alcotest.test_case
          (Printf.sprintf "trap parity: %s" name)
          `Quick (check_trap tp))
      trap_programs
  @ [
      Alcotest.test_case "budget sweep: trap at every boundary" `Quick
        test_budget_sweep;
      Alcotest.test_case "telemetry parity (interval inside batched blocks)"
        `Quick test_telemetry_parity;
      Alcotest.test_case "sampling parity" `Quick test_sampling_parity;
      Alcotest.test_case "block probe parity" `Quick test_block_probe_parity;
      Alcotest.test_case "block trace parity" `Quick test_block_trace_parity;
      Alcotest.test_case "engine api" `Quick test_engine_api;
    ]
