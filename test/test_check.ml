(* The static instrumentation verifier as a gate: every built-in workload,
   instrumented in every mode (and under the placement/PIC option
   variants), must verify with zero diagnostics. *)

module Instrument = Pp_instrument.Instrument
module Verifier = Pp_analysis.Verifier

let modes =
  [
    Instrument.Edge_freq;
    Instrument.Flow_freq;
    Instrument.Flow_hw;
    Instrument.Context_hw;
    Instrument.Context_flow;
  ]

let option_variants =
  [
    ("default", Instrument.default_options);
    ( "optimized",
      { Instrument.default_options with optimize_placement = true } );
    ("caller-saves", { Instrument.default_options with caller_saves = true });
    ( "backedge-reads",
      { Instrument.default_options with backedge_metric_reads = true } );
    ( "everything",
      {
        Instrument.default_options with
        optimize_placement = true;
        caller_saves = true;
        backedge_metric_reads = true;
      } );
  ]

let check_workload w =
  let prog = Pp_workloads.Workload.compile w in
  List.iter
    (fun (vname, options) ->
      List.iter
        (fun mode ->
          let instrumented, manifest = Instrument.run ~options ~mode prog in
          match
            Verifier.verify_program ~original:prog ~manifest instrumented
          with
          | [] -> ()
          | diags ->
              Alcotest.failf "%s/%s [%s]: %s"
                (Instrument.mode_name mode)
                vname
                w.Pp_workloads.Workload.name
                (String.concat "; "
                   (List.map Pp_ir.Diag.to_string diags)))
        modes)
    option_variants

let suite =
  List.map
    (fun w ->
      Alcotest.test_case w.Pp_workloads.Workload.name `Slow (fun () ->
          check_workload w))
    Pp_workloads.Registry.all
