(* Differential property testing over randomly generated MiniC programs:
   every instrumentation mode must preserve the observable output, and the
   alternative counter strategies must agree on path frequencies.

   The generator emits source text from a bounded grammar, so every program
   type-checks and terminates by construction (loops are counted, recursion
   is depth-bounded through an explicit argument). *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Edge_profile = Pp_core.Edge_profile
module Cct = Pp_core.Cct
module Runtime = Pp_vm.Runtime

type gen_state = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable depth : int;
  mutable uid : int;  (* locals are function-scoped: names must be unique *)
}

let emit st fmt = Printf.ksprintf (Buffer.add_string st.buf) fmt

let pick st xs = List.nth xs (Random.State.int st.rng (List.length xs))

let gen_expr st ~vars =
  (* Small arithmetic over locals, constants, array cells and helper
     calls. *)
  let rec go fuel =
    if fuel = 0 then
      pick st
        [
          (fun () -> emit st "%d" (Random.State.int st.rng 100));
          (fun () -> emit st "%s" (pick st vars));
        ]
        ()
    else
      pick st
        [
          (fun () -> emit st "%d" (Random.State.int st.rng 100));
          (fun () -> emit st "%s" (pick st vars));
          (fun () ->
            emit st "(";
            go (fuel - 1);
            emit st " %s " (pick st [ "+"; "-"; "*" ]);
            go (fuel - 1);
            emit st ")");
          (fun () ->
            (* OCaml-style rem is negative for negative operands: fold
               into range twice so any generated value indexes safely. *)
            emit st "arr[((";
            go (fuel - 1);
            emit st ") %% 64 + 64) %% 64]");
          (fun () ->
            emit st "helper(";
            go (fuel - 1);
            emit st ", %d)" (Random.State.int st.rng 6));
        ]
        ()
  in
  go 2

let gen_cond st ~vars =
  emit st "%s %s " (pick st vars) (pick st [ "<"; ">"; "=="; "!=" ]);
  emit st "%d" (Random.State.int st.rng 50)

(* [vars] are readable; [mut] are assignable.  Loop counters are readable
   only — otherwise a body could reset its own counter and never finish. *)
let rec gen_stmt st ~vars ~mut =
  if st.depth > 3 then gen_assign st ~vars ~mut
  else
    pick st
      [
        (fun () -> gen_assign st ~vars ~mut);
        (fun () -> gen_assign st ~vars ~mut);
        (fun () ->
          (* bounded for loop over a dedicated, uniquely named counter *)
          st.depth <- st.depth + 1;
          st.uid <- st.uid + 1;
          let i = Printf.sprintf "i%d" st.uid in
          emit st "int %s;\nfor (%s = 0; %s < %d; %s = %s + 1) {\n" i i i
            (1 + Random.State.int st.rng 4)
            i i;
          gen_block st ~vars:(i :: vars) ~mut;
          emit st "}\n";
          st.depth <- st.depth - 1);
        (fun () ->
          st.depth <- st.depth + 1;
          emit st "if (";
          gen_cond st ~vars;
          emit st ") {\n";
          gen_block st ~vars ~mut;
          emit st "}";
          if Random.State.bool st.rng then begin
            emit st " else {\n";
            gen_block st ~vars ~mut;
            emit st "}"
          end;
          emit st "\n";
          st.depth <- st.depth - 1);
      ]
      ()

and gen_assign st ~vars ~mut =
  let lhs =
    pick st
      (List.map (fun v -> `Var v) mut
      @ [ `Cell (Random.State.int st.rng 64) ])
  in
  (match lhs with
  | `Var v -> emit st "%s = " v
  | `Cell i -> emit st "arr[%d] = " i);
  gen_expr st ~vars;
  emit st ";\n"

and gen_block st ~vars ~mut =
  let n = 1 + Random.State.int st.rng 3 in
  for _ = 1 to n do
    gen_stmt st ~vars ~mut
  done

let gen_program seed =
  let st =
    { rng = Random.State.make [| seed; 77 |]; buf = Buffer.create 1024;
      depth = 0; uid = 0 }
  in
  emit st "int arr[64];\n";
  emit st
    "int helper(int a, int d) {\n\
    \  if (d <= 0) { return a %% 97; }\n\
    \  return helper(a + d, d - 1) %% 1000;\n\
     }\n";
  emit st "void work(int x, int y) {\n";
  gen_block st ~vars:[ "x"; "y" ] ~mut:[ "x"; "y" ];
  emit st "}\n";
  emit st "void main() {\n  int k;\n";
  emit st "  for (k = 0; k < %d; k = k + 1) { work(k, %d - k); }\n"
    (2 + Random.State.int st.rng 2)
    (Random.State.int st.rng 20);
  emit st "  int j;\n  for (j = 0; j < 64; j = j + 1) { print(arr[j]); }\n";
  emit st "}\n";
  Buffer.contents st.buf

let outputs (r : Interp.result) = r.Interp.output

let prop_modes_transparent =
  QCheck.Test.make ~name:"random programs: all modes preserve output"
    ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      match Pp_minic.Compile.program ~name:"gen" src with
      | exception Pp_minic.Errors.Error (pos, msg) ->
          QCheck.Test.fail_reportf "generator produced invalid MiniC:@.%s@.%d:%d %s"
            src pos.Pp_minic.Ast.line pos.Pp_minic.Ast.col msg
      | prog ->
          let base =
            Driver.run_baseline ~max_instructions:100_000_000 prog
          in
          List.for_all
            (fun mode ->
              let s =
                Driver.prepare ~max_instructions:400_000_000 ~mode prog
              in
              outputs (Driver.run s) = outputs base)
            [
              Instrument.Edge_freq;
              Instrument.Flow_freq;
              Instrument.Flow_hw;
              Instrument.Context_hw;
              Instrument.Context_flow;
            ])

let prop_strategies_agree =
  QCheck.Test.make
    ~name:"random programs: hash/spill/chord strategies agree" ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      let prog = Pp_minic.Compile.program ~name:"gen" src in
      let freqs options =
        let s =
          Driver.prepare ?options ~max_instructions:400_000_000
            ~mode:Instrument.Flow_freq prog
        in
        ignore (Driver.run s);
        List.concat_map
          (fun (p : Pp_core.Profile.proc_profile) ->
            List.map
              (fun (sum, m) ->
                (p.Pp_core.Profile.proc, sum, m.Pp_core.Profile.freq))
              p.Pp_core.Profile.paths)
          (Driver.path_profile s).Pp_core.Profile.procs
        |> List.sort compare
      in
      let reference = freqs None in
      List.for_all
        (fun options -> freqs (Some options) = reference)
        [
          { Instrument.default_options with Instrument.array_threshold = 0 };
          { Instrument.default_options with Instrument.spill_threshold = 0 };
          { Instrument.default_options with
            Instrument.optimize_placement = true };
        ])

(* {2 Shard-split-equals-whole}

   The merge laws on real artifacts: split a run's profile (or CCT, or
   chord counters) into k shards, merge them back, and require the whole.
   Together the three properties cover all five instrumentation modes. *)

let compile seed = Pp_minic.Compile.program ~name:"gen" (gen_program seed)

(* [v] as [k] non-negative parts (random cuts; the exact distribution is
   irrelevant, only the sum). *)
let split_int rng k v =
  let parts = Array.make k 0 in
  let rem = ref v in
  for i = 0 to k - 2 do
    let x = Random.State.int rng (!rem + 1) in
    parts.(i) <- x;
    rem := !rem - x
  done;
  parts.(k - 1) <- !rem;
  parts

let prop_shard_profiles =
  QCheck.Test.make
    ~name:"random programs: sharded path profiles merge to the whole"
    ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile seed in
      let rng = Random.State.make [| seed; 31 |] in
      let k = 2 + Random.State.int rng 2 in
      List.for_all
        (fun mode ->
          let s = Driver.prepare ~max_instructions:400_000_000 ~mode prog in
          ignore (Driver.run s);
          let whole =
            Profile_io.of_profile
              ~program_hash:(Profile_io.program_hash prog)
              ~mode:(Instrument.mode_name mode)
              (Driver.path_profile s)
          in
          (* Split every accumulator of every path into k parts; shards
             past the first drop paths they saw nothing of. *)
          let tables =
            List.map
              (fun (name, np, paths) ->
                ( name,
                  np,
                  List.map
                    (fun (sum, (m : Profile.path_metrics)) ->
                      ( sum,
                        split_int rng k m.Profile.freq,
                        split_int rng k m.Profile.m0,
                        split_int rng k m.Profile.m1 ))
                    paths ))
              whole.Profile_io.procs
          in
          let shard i =
            {
              whole with
              Profile_io.procs =
                List.map
                  (fun (name, np, paths) ->
                    ( name,
                      np,
                      List.filter_map
                        (fun (sum, fs, m0s, m1s) ->
                          let m =
                            {
                              Profile.freq = fs.(i);
                              m0 = m0s.(i);
                              m1 = m1s.(i);
                            }
                          in
                          if
                            i > 0 && m.Profile.freq = 0 && m.Profile.m0 = 0
                            && m.Profile.m1 = 0
                          then None
                          else Some (sum, m))
                        paths ))
                  tables;
            }
          in
          match Profile_io.merge_all (List.init k shard) with
          | Error _ -> false
          | Ok merged -> merged = Profile_io.canonical whole)
        [ Instrument.Flow_freq; Instrument.Flow_hw; Instrument.Context_flow ])

(* Per-record payload for CCT sharding: metric counters plus the path
   table, as plain immutable data so shapes compare with (=). *)
type pay = { pm : int list; ppt : (int * int) list }

let pay_of (d : Runtime.record_data) =
  {
    pm = Array.to_list d.Runtime.metrics;
    ppt =
      Hashtbl.fold (fun s c acc -> (s, !c) :: acc) d.Runtime.paths []
      |> List.sort compare;
  }

let rec sum_pt a b =
  match (a, b) with
  | [], r | r, [] -> r
  | (ka, va) :: ta, (kb, vb) :: tb ->
      if ka < kb then (ka, va) :: sum_pt ta b
      else if kb < ka then (kb, vb) :: sum_pt a tb
      else (ka, va + vb) :: sum_pt ta tb

let sum_pay a b =
  match (a, b) with
  | Some x, Some y ->
      { pm = List.map2 ( + ) x.pm y.pm; ppt = sum_pt x.ppt y.ppt }
  | Some x, None | None, Some x -> x
  | None, None -> { pm = []; ppt = [] }

(* Rebuild [src] with fresh per-node data and per-edge call counts (the
   graft API reproduces structure exactly, ids in allocation order). *)
let clone ~data ~calls src =
  let t =
    Cct.create
      ~merge_call_sites:(Cct.merged src)
      ~make_data:(fun ~proc:_ ~nsites:_ -> data (Cct.root src))
      ()
  in
  let map = Hashtbl.create 64 in
  Hashtbl.replace map 0 (Cct.root t);
  Cct.iter
    (fun n ->
      match Cct.parent n with
      | None -> ()
      | Some p ->
          let n' =
            Cct.graft_node t
              ~parent:(Hashtbl.find map (Cct.id p))
              ~proc:(Cct.proc n) ~nsites:(Cct.nsites n) ~data:(data n)
          in
          Hashtbl.replace map (Cct.id n) n')
    src;
  Cct.iter
    (fun n ->
      List.iter
        (fun (e : _ Cct.edge) ->
          Cct.graft_edge t
            ~from_:(Hashtbl.find map (Cct.id n))
            ~site:e.Cct.site
            ~target:(Hashtbl.find map (Cct.id e.Cct.target))
            ~is_backedge:e.Cct.is_backedge ~kind:e.Cct.kind ~calls:(calls n e))
        (Cct.edges n))
    src;
  t

type shape =
  | Node of string * pay * (int * bool * int * shape) list
  | Back of string

let rec shape n =
  Node
    ( Cct.proc n,
      Cct.data n,
      List.map
        (fun (e : _ Cct.edge) ->
          ( e.Cct.site,
            e.Cct.is_backedge,
            e.Cct.calls,
            if e.Cct.is_backedge then Back (Cct.proc e.Cct.target)
            else shape e.Cct.target ))
        (Cct.edges n) )

let prop_shard_ccts =
  QCheck.Test.make
    ~name:"random programs: sharded CCTs merge to the whole" ~count:5
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile seed in
      let rng = Random.State.make [| seed; 37 |] in
      let k = 2 + Random.State.int rng 2 in
      List.for_all
        (fun mode ->
          let s = Driver.prepare ~max_instructions:400_000_000 ~mode prog in
          ignore (Driver.run s);
          let cct = Driver.cct s in
          let whole = clone ~data:(fun n -> pay_of (Cct.data n))
              ~calls:(fun _ e -> e.Cct.calls) cct
          in
          (* Consistent k-way splits of every counter, keyed off the
             source tree's node ids and edges. *)
          let node_split = Hashtbl.create 64 in
          Cct.iter
            (fun n ->
              let p = pay_of (Cct.data n) in
              Hashtbl.replace node_split (Cct.id n)
                ( List.map (split_int rng k) p.pm,
                  List.map (fun (s, c) -> (s, split_int rng k c)) p.ppt ))
            cct;
          let edge_split = Hashtbl.create 64 in
          Cct.iter
            (fun n ->
              List.iter
                (fun (e : _ Cct.edge) ->
                  Hashtbl.replace edge_split
                    (Cct.id n, e.Cct.site, Cct.id e.Cct.target)
                    (split_int rng k e.Cct.calls))
                (Cct.edges n))
            cct;
          let shard i =
            clone
              ~data:(fun n ->
                let ms, pts = Hashtbl.find node_split (Cct.id n) in
                {
                  pm = List.map (fun parts -> parts.(i)) ms;
                  ppt = List.map (fun (s, parts) -> (s, parts.(i))) pts;
                })
              ~calls:(fun n e ->
                (Hashtbl.find edge_split
                   (Cct.id n, e.Cct.site, Cct.id e.Cct.target)).(i))
              cct
          in
          let merged =
            List.fold_left
              (Cct.merge ~merge_data:sum_pay)
              (shard 0)
              (List.init (k - 1) (fun i -> shard (i + 1)))
          in
          Cct.check_invariants merged;
          Cct.num_nodes merged = Cct.num_nodes whole
          && shape (Cct.root merged) = shape (Cct.root whole))
        [ Instrument.Context_hw; Instrument.Context_flow ])

let prop_shard_edge_counts =
  QCheck.Test.make
    ~name:"random programs: chord counter merge is linear under reconstruct"
    ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile seed in
      let rng = Random.State.make [| seed; 41 |] in
      let s =
        Driver.prepare ~max_instructions:400_000_000
          ~mode:Instrument.Edge_freq prog
      in
      ignore (Driver.run s);
      List.for_all
        (fun (_, plan, _) ->
          let n = Edge_profile.num_counters plan in
          let vec () =
            Array.init n (fun _ -> Random.State.int rng 20)
          in
          let a = vec () and b = vec () in
          let merged =
            Edge_profile.reconstruct plan
              ~counts:(Edge_profile.merge_counts plan a b)
          in
          let ra = Edge_profile.reconstruct plan ~counts:a
          and rb = Edge_profile.reconstruct plan ~counts:b in
          merged
          = List.map2
              (fun (e, ca) (e', cb) ->
                assert (e = e');
                (e, ca + cb))
              ra rb)
        (Driver.edge_profile s))

(* {2 Engine differential}

   The closure-threaded compiled tier against the reference interpreter,
   over the same random-program space: every observable — trap message,
   full counter set, output, cycles and (for path modes) the serialized
   profile — must be identical.  Half the seeds get a division-by-zero
   injected after main's work loop, and a third run under a tiny budget,
   so the property also covers traps that land inside batched blocks. *)

module Engine = Pp_vm.Engine

(* Plant [print(k / (k - k))] right after main's work loop: [k] is
   main's loop counter, so the quotient traps after real work has
   touched the machine state.  The marker appears exactly once. *)
let inject_div_by_zero src =
  let marker = "  int j;\n" in
  let rec find i =
    if i + String.length marker > String.length src then None
    else if String.sub src i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> src
  | Some i ->
      String.sub src 0 i
      ^ "  print(k / (k - k));\n"
      ^ String.sub src i (String.length src - i)

let observe_engine ~budget ~kind config prog =
  let outcome run vm =
    match run () with
    | r -> ("done", r)
    | exception Interp.Trap m -> (m, Interp.collect_result vm)
  in
  match config with
  | None ->
      let e = Engine.create ~kind ~max_instructions:budget prog in
      let tag, r = outcome (fun () -> Engine.run e) (Engine.vm e) in
      (tag, r, "")
  | Some mode ->
      let s =
        Driver.prepare ~max_instructions:budget ~engine:kind ~mode prog
      in
      let tag, r = outcome (fun () -> Driver.run s) s.Driver.vm in
      let profile =
        match mode with
        | (Instrument.Flow_freq | Instrument.Flow_hw
          | Instrument.Context_flow)
          when tag = "done" ->
            Profile_io.to_string
              (Profile_io.of_profile
                 ~program_hash:(Profile_io.program_hash prog)
                 ~mode:(Instrument.mode_name mode)
                 (Driver.path_profile s))
        | _ -> ""
      in
      (tag, r, profile)

let prop_engines_agree =
  QCheck.Test.make
    ~name:"random programs: compiled tier is byte-identical (incl. traps)"
    ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 53 |] in
      let src = gen_program seed in
      let src = if seed mod 2 = 0 then inject_div_by_zero src else src in
      let prog = Pp_minic.Compile.program ~name:"gen" src in
      let budget =
        (* A third of the runs exhaust the budget mid-program. *)
        match seed mod 3 with
        | 0 -> 2_000 + Random.State.int rng 5_000
        | _ -> 100_000_000
      in
      List.for_all
        (fun config ->
          observe_engine ~budget ~kind:Engine.Interpreted config prog
          = observe_engine ~budget ~kind:Engine.Compiled config prog)
        (None
        :: List.map Option.some
             [
               Instrument.Edge_freq;
               Instrument.Flow_freq;
               Instrument.Flow_hw;
               Instrument.Context_hw;
               Instrument.Context_flow;
             ]))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_modes_transparent;
    QCheck_alcotest.to_alcotest prop_strategies_agree;
    QCheck_alcotest.to_alcotest prop_shard_profiles;
    QCheck_alcotest.to_alcotest prop_shard_ccts;
    QCheck_alcotest.to_alcotest prop_shard_edge_counts;
    QCheck_alcotest.to_alcotest prop_engines_agree;
  ]
